//! Cross-iteration dependence analysis, reduction recognition and
//! bounds-check generation.

use crate::cfg::FunctionCfg;
use crate::induction::{InductionVar, VarRef};
use crate::liveness::Liveness;
use crate::loops::NaturalLoop;
use crate::memory::{AccessPattern, AddressBase, MemAccess};
use janus_ir::{AluOp, FpuOp, Inst, Operand, Reg};
use std::collections::{HashMap, HashSet};

/// Two statically-addressed (global) affine walks whose base addresses differ
/// by at most this many bytes are treated as the *same* array accessed at a
/// shifted index (`a[i]` vs `a[i-1]`); larger separations are different
/// objects. Real binaries resolve this through section/symbol extents; the
/// threshold plays that role here.
const SAME_ARRAY_NEIGHBOUR_THRESHOLD: i64 = 256;

/// The kind of a cross-iteration dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceKind {
    /// Read-after-write across iterations (true dependence).
    ReadAfterWrite,
    /// Write-after-read across iterations (anti dependence).
    WriteAfterRead,
    /// Write-after-write across iterations (output dependence).
    WriteAfterWrite,
    /// A loop-carried scalar (register or stack) value.
    Scalar,
}

/// One discovered cross-iteration dependence.
#[derive(Debug, Clone, PartialEq)]
pub struct Dependence {
    /// Kind of dependence.
    pub kind: DependenceKind,
    /// Instruction address of the source access.
    pub from_addr: u64,
    /// Instruction address of the sink access.
    pub to_addr: u64,
    /// Byte distance between the two address expressions, when meaningful.
    pub distance: Option<i64>,
}

/// The reduction operation recognised on an accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionOp {
    /// Integer or floating-point addition.
    Add,
    /// Integer or floating-point subtraction.
    Sub,
}

/// A recognised reduction variable (register, stack slot or global scalar
/// accumulated with `+=` / `-=`).
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// Where the accumulator lives.
    pub var: VarRef,
    /// The accumulate operation.
    pub op: ReductionOp,
    /// Addresses of the accumulate instructions.
    pub addrs: Vec<u64>,
    /// `true` for floating-point accumulation.
    pub is_float: bool,
}

/// One side of a runtime array-bounds check: the base object and the stride
/// with which the loop walks it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseExtent {
    /// The array base.
    pub base: AddressBase,
    /// Stride in bytes per iteration.
    pub scale: i64,
    /// Constant byte offset from the base.
    pub offset: i64,
    /// Access width in bytes.
    pub width: u64,
}

/// A pair of array walks whose independence must be verified at runtime
/// (the paper's `MEM_BOUNDS_CHECK`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsCheckPair {
    /// The written range.
    pub write: BaseExtent,
    /// The other (read or written) range.
    pub other: BaseExtent,
}

/// The complete result of dependence analysis over one loop.
#[derive(Debug, Clone, Default)]
pub struct DependenceResult {
    /// Proved cross-iteration dependences.
    pub dependences: Vec<Dependence>,
    /// Recognised reductions (these do *not* count as dependences).
    pub reductions: Vec<Reduction>,
    /// Array pairs that need runtime bounds checks.
    pub bounds_checks: Vec<BoundsCheckPair>,
    /// Loop-carried scalar registers (excluding induction and reductions).
    pub scalar_carried: Vec<Reg>,
    /// Stack slots that are only read inside the loop (redirected to the main
    /// stack by `MEM_MAIN_STACK` when parallelised).
    pub read_only_stack_slots: Vec<i64>,
    /// Stack slots written in a way that carries a dependence.
    pub carried_stack_slots: Vec<i64>,
    /// `true` if some access could not be analysed at all.
    pub has_unknown_access: bool,
}

fn effective_offset(base: &AddressBase, offset: i64) -> i64 {
    match base {
        AddressBase::Global(g) => *g as i64 + offset,
        AddressBase::Reg(_) => offset,
    }
}

fn same_base(a: &AddressBase, b: &AddressBase) -> bool {
    match (a, b) {
        (AddressBase::Reg(x), AddressBase::Reg(y)) => x == y,
        (AddressBase::Global(_), AddressBase::Global(_)) => true,
        _ => false,
    }
}

fn base_extent(pattern: &AccessPattern, width: u64) -> Option<BaseExtent> {
    match pattern {
        AccessPattern::Affine {
            base,
            scale,
            offset,
        } => Some(BaseExtent {
            base: *base,
            scale: *scale,
            offset: *offset,
            width,
        }),
        AccessPattern::Invariant { base, offset } => Some(BaseExtent {
            base: *base,
            scale: 0,
            offset: *offset,
            width,
        }),
        _ => None,
    }
}

/// Analyses all cross-iteration dependences of one loop.
#[must_use]
pub fn analyze_dependences(
    func: &FunctionCfg,
    nl: &NaturalLoop,
    induction: Option<&InductionVar>,
    accesses: &[MemAccess],
    live: &Liveness,
) -> DependenceResult {
    let mut result = DependenceResult::default();
    let trip = induction.and_then(|iv| iv.trip_count);
    let step = induction.map_or(1, |iv| iv.step);

    result.has_unknown_access = accesses
        .iter()
        .any(|a| matches!(a.pattern, AccessPattern::Unknown));

    analyze_memory_pairs(accesses, trip, step, &mut result);
    analyze_stack_slots(func, nl, accesses, &mut result);
    analyze_scalars(func, nl, induction, live, &mut result);
    dedup_bounds_checks(&mut result);
    result
}

fn analyze_memory_pairs(
    accesses: &[MemAccess],
    trip: Option<u64>,
    step: i64,
    result: &mut DependenceResult,
) {
    let writes: Vec<&MemAccess> = accesses.iter().filter(|a| a.is_write).collect();
    for w in &writes {
        for o in accesses {
            if std::ptr::eq(*w, o) {
                continue;
            }
            // Only write/any pairs matter; stack slots are handled separately
            // and spill traffic never carries a dependence.
            if matches!(
                w.pattern,
                AccessPattern::StackSlot { .. } | AccessPattern::Spill | AccessPattern::Unknown
            ) || matches!(
                o.pattern,
                AccessPattern::StackSlot { .. } | AccessPattern::Spill | AccessPattern::Unknown
            ) {
                continue;
            }
            let kind = if o.is_write {
                DependenceKind::WriteAfterWrite
            } else {
                DependenceKind::ReadAfterWrite
            };
            match (&w.pattern, &o.pattern) {
                (
                    AccessPattern::Affine {
                        base: wb,
                        scale: ws,
                        offset: wo,
                    },
                    AccessPattern::Affine {
                        base: ob,
                        scale: os,
                        offset: oo,
                    },
                ) => {
                    let delta = effective_offset(wb, *wo) - effective_offset(ob, *oo);
                    if same_base(wb, ob) && delta == 0 && ws == os {
                        // Same element every iteration: intra-iteration only.
                        continue;
                    }
                    // Decide whether the two walks touch the same object.
                    let same_object = match (wb, ob) {
                        (AddressBase::Reg(x), AddressBase::Reg(y)) if x == y => Some(true),
                        (AddressBase::Global(_), AddressBase::Global(_)) => {
                            if delta.abs() <= SAME_ARRAY_NEIGHBOUR_THRESHOLD {
                                // A shifted index into the same array.
                                Some(true)
                            } else if let (Some(rw), Some(ro)) =
                                (w.static_range(trip, step), o.static_range(trip, step))
                            {
                                Some(ranges_overlap(rw, ro))
                            } else {
                                // Distinct static bases with unknown extents:
                                // resolved by a runtime bounds check.
                                None
                            }
                        }
                        _ => None,
                    };
                    match same_object {
                        Some(true) => {
                            // Addresses collide in *different* iterations only
                            // when their offset difference is a non-zero
                            // multiple of the per-iteration stride.
                            let stride = (ws * step).abs().max(1);
                            let collides = if ws != os {
                                true // differing strides: be conservative
                            } else {
                                delta != 0 && delta.abs() % stride == 0
                            };
                            if collides {
                                result.dependences.push(Dependence {
                                    kind,
                                    from_addr: w.addr,
                                    to_addr: o.addr,
                                    distance: Some(delta),
                                });
                            }
                            // Otherwise the unrolled copies interleave but
                            // never touch the same address across iterations.
                        }
                        Some(false) => {}
                        None => {
                            if let (Some(a), Some(b)) = (
                                base_extent(&w.pattern, w.width),
                                base_extent(&o.pattern, o.width),
                            ) {
                                result
                                    .bounds_checks
                                    .push(BoundsCheckPair { write: a, other: b });
                            }
                        }
                    }
                }
                (
                    AccessPattern::Affine { base: wb, .. },
                    AccessPattern::Invariant { base: ob, .. },
                )
                | (
                    AccessPattern::Invariant { base: wb, .. },
                    AccessPattern::Affine { base: ob, .. },
                ) => {
                    // A strided walk against a fixed location: check overlap
                    // statically when possible, otherwise require a runtime
                    // check if the bases cannot be proved distinct.
                    let disjoint = match (w.static_range(trip, step), o.static_range(trip, step)) {
                        (Some(rw), Some(ro)) => !ranges_overlap(rw, ro),
                        _ => false,
                    };
                    if disjoint {
                        continue;
                    }
                    if same_base(wb, ob)
                        || matches!(
                            (wb, ob),
                            (AddressBase::Reg(_), _) | (_, AddressBase::Reg(_))
                        )
                    {
                        if let (Some(a), Some(b)) = (
                            base_extent(&w.pattern, w.width),
                            base_extent(&o.pattern, o.width),
                        ) {
                            result
                                .bounds_checks
                                .push(BoundsCheckPair { write: a, other: b });
                        }
                    }
                }
                (
                    AccessPattern::Invariant {
                        base: wb,
                        offset: wo,
                    },
                    AccessPattern::Invariant {
                        base: ob,
                        offset: oo,
                    },
                ) if same_base(wb, ob)
                    && effective_offset(wb, *wo) == effective_offset(ob, *oo) =>
                {
                    // Same scalar location accessed every iteration;
                    // reduction recognition decides whether this is
                    // acceptable (handled in analyze_stack_slots-like
                    // pass below via globals).
                    result.dependences.push(Dependence {
                        kind,
                        from_addr: w.addr,
                        to_addr: o.addr,
                        distance: Some(0),
                    });
                }
                _ => {}
            }
        }
    }
}

fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Classifies stack-slot usage inside the loop: read-only slots, reduction
/// accumulators and genuinely carried slots.
fn analyze_stack_slots(
    func: &FunctionCfg,
    nl: &NaturalLoop,
    accesses: &[MemAccess],
    result: &mut DependenceResult,
) {
    let mut slots: HashMap<i64, (bool, bool)> = HashMap::new(); // offset -> (read, written)
    for a in accesses {
        if let AccessPattern::StackSlot { offset } = a.pattern {
            let e = slots.entry(offset).or_insert((false, false));
            if a.is_write {
                e.1 = true;
            } else {
                e.0 = true;
            }
        }
    }
    for (offset, (read, written)) in slots {
        if !written {
            if read {
                result.read_only_stack_slots.push(offset);
            }
            continue;
        }
        // Written: a reduction if every write to this slot is an accumulate
        // (add/sub read-modify-write of the same slot).
        let mut all_accumulate = true;
        let mut addrs = Vec::new();
        let mut op = ReductionOp::Add;
        let mut is_float = false;
        for &bid in &nl.blocks {
            for d in &func.blocks[bid].insts {
                let writes_slot = d
                    .inst
                    .mem_write()
                    .and_then(|m| crate::induction::VarRef::from_memref(&m))
                    .map(|v| v == VarRef::Stack(offset))
                    .unwrap_or(false);
                if !writes_slot {
                    continue;
                }
                match &d.inst {
                    Inst::Alu { op: AluOp::Add, .. } => {
                        addrs.push(d.addr);
                        op = ReductionOp::Add;
                    }
                    Inst::Alu { op: AluOp::Sub, .. } => {
                        addrs.push(d.addr);
                        op = ReductionOp::Sub;
                    }
                    Inst::Fpu { op: FpuOp::Add, .. } => {
                        addrs.push(d.addr);
                        op = ReductionOp::Add;
                        is_float = true;
                    }
                    Inst::Fpu { op: FpuOp::Sub, .. } => {
                        addrs.push(d.addr);
                        op = ReductionOp::Sub;
                        is_float = true;
                    }
                    _ => all_accumulate = false,
                }
            }
        }
        if all_accumulate && !addrs.is_empty() && read {
            result.reductions.push(Reduction {
                var: VarRef::Stack(offset),
                op,
                addrs,
                is_float,
            });
        } else if read {
            result.carried_stack_slots.push(offset);
            result.dependences.push(Dependence {
                kind: DependenceKind::Scalar,
                from_addr: 0,
                to_addr: 0,
                distance: Some(0),
            });
        }
        // Written but never read inside the loop: privatisable, not carried.
    }
}

/// Finds loop-carried scalar registers and register reductions.
fn analyze_scalars(
    func: &FunctionCfg,
    nl: &NaturalLoop,
    induction: Option<&InductionVar>,
    live: &Liveness,
    result: &mut DependenceResult,
) {
    let mut written: HashSet<Reg> = HashSet::new();
    for &bid in &nl.blocks {
        for d in &func.blocks[bid].insts {
            for r in d.inst.writes() {
                written.insert(r);
            }
        }
    }
    let live_in_header: HashSet<Reg> = live.live_in(nl.header).clone();
    let induction_reg = induction.and_then(|iv| match iv.var {
        VarRef::Reg(r) => Some(r),
        _ => None,
    });
    for r in written {
        if r == Reg::SP || r == Reg::FP || Some(r) == induction_reg {
            continue;
        }
        if !live_in_header.contains(&r) {
            continue; // private to one iteration
        }
        // Candidate loop-carried register: a reduction if all its writes are
        // accumulations of the form `op r, x` (add/sub/fadd/fsub).
        let mut all_accumulate = true;
        let mut addrs = Vec::new();
        let mut op = ReductionOp::Add;
        let mut is_float = false;
        for &bid in &nl.blocks {
            for d in &func.blocks[bid].insts {
                if !d.inst.writes().contains(&r) {
                    continue;
                }
                match &d.inst {
                    Inst::Alu {
                        op: aop @ (AluOp::Add | AluOp::Sub),
                        dst: Operand::Reg(dr),
                        ..
                    } if *dr == r => {
                        addrs.push(d.addr);
                        op = if *aop == AluOp::Add {
                            ReductionOp::Add
                        } else {
                            ReductionOp::Sub
                        };
                    }
                    Inst::Fpu {
                        op: fop @ (FpuOp::Add | FpuOp::Sub),
                        dst: Operand::Reg(dr),
                        ..
                    } if *dr == r => {
                        addrs.push(d.addr);
                        op = if *fop == FpuOp::Add {
                            ReductionOp::Add
                        } else {
                            ReductionOp::Sub
                        };
                        is_float = true;
                    }
                    _ => all_accumulate = false,
                }
            }
        }
        if all_accumulate && !addrs.is_empty() {
            result.reductions.push(Reduction {
                var: VarRef::Reg(r),
                op,
                addrs,
                is_float,
            });
        } else {
            result.scalar_carried.push(r);
            result.dependences.push(Dependence {
                kind: DependenceKind::Scalar,
                from_addr: 0,
                to_addr: 0,
                distance: None,
            });
        }
    }
    result.scalar_carried.sort_by_key(|r| r.raw());
}

fn dedup_bounds_checks(result: &mut DependenceResult) {
    let mut seen: Vec<BoundsCheckPair> = Vec::new();
    for p in std::mem::take(&mut result.bounds_checks) {
        let dup = seen.iter().any(|q| {
            (q.write.base == p.write.base && q.other.base == p.other.base)
                || (q.write.base == p.other.base && q.other.base == p.write.base)
        });
        if !dup {
            seen.push(p);
        }
    }
    result.bounds_checks = seen;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccessPattern;
    use janus_ir::MemRef;

    fn access(pattern: AccessPattern, is_write: bool, addr: u64) -> MemAccess {
        MemAccess {
            addr,
            is_write,
            mem: MemRef::absolute(0),
            width: 8,
            pattern,
        }
    }

    #[test]
    fn disjoint_global_arrays_have_no_dependence() {
        let accesses = vec![
            access(
                AccessPattern::Affine {
                    base: AddressBase::Global(0x600000),
                    scale: 8,
                    offset: 0,
                },
                true,
                0x400100,
            ),
            access(
                AccessPattern::Affine {
                    base: AddressBase::Global(0x700000),
                    scale: 8,
                    offset: 0,
                },
                false,
                0x400120,
            ),
        ];
        let mut result = DependenceResult::default();
        analyze_memory_pairs(&accesses, Some(100), 1, &mut result);
        assert!(result.dependences.is_empty());
        assert!(result.bounds_checks.is_empty());
    }

    #[test]
    fn overlapping_global_walk_is_a_static_dependence() {
        // write a[i], read a[i+1] (8 bytes apart, same array).
        let accesses = vec![
            access(
                AccessPattern::Affine {
                    base: AddressBase::Global(0x600000),
                    scale: 8,
                    offset: 0,
                },
                true,
                0x400100,
            ),
            access(
                AccessPattern::Affine {
                    base: AddressBase::Global(0x600008),
                    scale: 8,
                    offset: 0,
                },
                false,
                0x400120,
            ),
        ];
        let mut result = DependenceResult::default();
        analyze_memory_pairs(&accesses, Some(100), 1, &mut result);
        assert_eq!(result.dependences.len(), 1);
        assert_eq!(result.dependences[0].kind, DependenceKind::ReadAfterWrite);
        assert_eq!(result.dependences[0].distance, Some(-8));
    }

    #[test]
    fn same_element_access_is_not_cross_iteration() {
        let accesses = vec![
            access(
                AccessPattern::Affine {
                    base: AddressBase::Global(0x600000),
                    scale: 8,
                    offset: 0,
                },
                true,
                0x400100,
            ),
            access(
                AccessPattern::Affine {
                    base: AddressBase::Global(0x600000),
                    scale: 8,
                    offset: 0,
                },
                false,
                0x400090,
            ),
        ];
        let mut result = DependenceResult::default();
        analyze_memory_pairs(&accesses, Some(100), 1, &mut result);
        assert!(result.dependences.is_empty());
    }

    #[test]
    fn distinct_pointer_bases_need_a_bounds_check() {
        let accesses = vec![
            access(
                AccessPattern::Affine {
                    base: AddressBase::Reg(Reg::R4),
                    scale: 8,
                    offset: 0,
                },
                true,
                0x400100,
            ),
            access(
                AccessPattern::Affine {
                    base: AddressBase::Reg(Reg::R5),
                    scale: 8,
                    offset: 0,
                },
                false,
                0x400120,
            ),
        ];
        let mut result = DependenceResult::default();
        analyze_memory_pairs(&accesses, None, 1, &mut result);
        assert!(result.dependences.is_empty());
        assert_eq!(result.bounds_checks.len(), 1);
        assert_eq!(
            result.bounds_checks[0].write.base,
            AddressBase::Reg(Reg::R4)
        );
    }

    #[test]
    fn duplicate_bounds_checks_are_merged() {
        let w = access(
            AccessPattern::Affine {
                base: AddressBase::Reg(Reg::R4),
                scale: 8,
                offset: 0,
            },
            true,
            0x400100,
        );
        let r1 = access(
            AccessPattern::Affine {
                base: AddressBase::Reg(Reg::R5),
                scale: 8,
                offset: 0,
            },
            false,
            0x400120,
        );
        let r2 = access(
            AccessPattern::Affine {
                base: AddressBase::Reg(Reg::R5),
                scale: 8,
                offset: 8,
            },
            false,
            0x400140,
        );
        let accesses = vec![w, r1, r2];
        let mut result = DependenceResult::default();
        analyze_memory_pairs(&accesses, None, 1, &mut result);
        dedup_bounds_checks(&mut result);
        assert_eq!(result.bounds_checks.len(), 1);
    }

    #[test]
    fn same_pointer_base_with_shifted_offset_is_a_dependence() {
        let accesses = vec![
            access(
                AccessPattern::Affine {
                    base: AddressBase::Reg(Reg::R4),
                    scale: 8,
                    offset: 0,
                },
                true,
                0x400100,
            ),
            access(
                AccessPattern::Affine {
                    base: AddressBase::Reg(Reg::R4),
                    scale: 8,
                    offset: 8,
                },
                false,
                0x400120,
            ),
        ];
        let mut result = DependenceResult::default();
        analyze_memory_pairs(&accesses, None, 1, &mut result);
        assert_eq!(result.dependences.len(), 1);
    }
}
