//! Natural-loop detection and loop-nest construction.

use crate::cfg::{BlockId, FunctionCfg};
use crate::dom::Dominators;
use std::collections::BTreeSet;

/// Index of a loop within one function's loop list.
pub type LoopId = usize;

/// A natural loop discovered from a back edge `latch -> header` where the
/// header dominates the latch.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Index of this loop within the function.
    pub id: LoopId,
    /// The loop header block.
    pub header: BlockId,
    /// Blocks that jump back to the header.
    pub latches: Vec<BlockId>,
    /// All blocks belonging to the loop (including the header).
    pub blocks: BTreeSet<BlockId>,
    /// Blocks inside the loop with at least one successor outside it.
    pub exit_blocks: Vec<BlockId>,
    /// Blocks outside the loop that are jumped to when the loop exits.
    pub exit_targets: Vec<BlockId>,
    /// Predecessors of the header that are outside the loop (the loop is
    /// entered through these).
    pub preheaders: Vec<BlockId>,
    /// The enclosing loop, if this loop is nested.
    pub parent: Option<LoopId>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
}

impl NaturalLoop {
    /// Returns `true` if `block` belongs to the loop.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }

    /// Number of blocks in the loop.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Finds every natural loop in a function and computes the nesting structure.
#[must_use]
pub fn find_loops(func: &FunctionCfg, doms: &Dominators) -> Vec<NaturalLoop> {
    // Collect back edges grouped by header.
    let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for b in &func.blocks {
        for &s in &b.succs {
            if doms.dominates(s, b.id) {
                match by_header.iter_mut().find(|(h, _)| *h == s) {
                    Some((_, latches)) => latches.push(b.id),
                    None => by_header.push((s, vec![b.id])),
                }
            }
        }
    }

    let mut loops = Vec::new();
    for (header, latches) in by_header {
        // Natural loop body: header plus all blocks that reach a latch without
        // passing through the header.
        let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
        blocks.insert(header);
        let mut stack: Vec<BlockId> = latches.clone();
        while let Some(b) = stack.pop() {
            if blocks.insert(b) {
                for &p in &func.blocks[b].preds {
                    if !blocks.contains(&p) {
                        stack.push(p);
                    }
                }
            }
        }
        let mut exit_blocks = Vec::new();
        let mut exit_targets = Vec::new();
        for &b in &blocks {
            for &s in &func.blocks[b].succs {
                if !blocks.contains(&s) {
                    if !exit_blocks.contains(&b) {
                        exit_blocks.push(b);
                    }
                    if !exit_targets.contains(&s) {
                        exit_targets.push(s);
                    }
                }
            }
        }
        let preheaders: Vec<BlockId> = func.blocks[header]
            .preds
            .iter()
            .copied()
            .filter(|p| !blocks.contains(p))
            .collect();
        loops.push(NaturalLoop {
            id: 0,
            header,
            latches,
            blocks,
            exit_blocks,
            exit_targets,
            preheaders,
            parent: None,
            depth: 1,
        });
    }

    // Sort outermost-first (larger loops first) and compute nesting.
    loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
    for (i, l) in loops.iter_mut().enumerate() {
        l.id = i;
    }
    for i in 0..loops.len() {
        // The parent is the smallest loop that strictly contains this loop.
        let mut best: Option<(usize, usize)> = None; // (size, idx)
        for j in 0..loops.len() {
            if i == j {
                continue;
            }
            if loops[j].blocks.len() > loops[i].blocks.len()
                && loops[i].blocks.iter().all(|b| loops[j].blocks.contains(b))
            {
                let size = loops[j].blocks.len();
                if best.is_none_or(|(s, _)| size < s) {
                    best = Some((size, j));
                }
            }
        }
        loops[i].parent = best.map(|(_, j)| j);
    }
    // Depths.
    for i in 0..loops.len() {
        let mut depth = 1;
        let mut cur = loops[i].parent;
        while let Some(p) = cur {
            depth += 1;
            cur = loops[p].parent;
        }
        loops[i].depth = depth;
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover_functions;
    use janus_ir::{AluOp, AsmBuilder, Cond, Inst, Operand, Reg};

    fn nested_loop_binary() -> janus_ir::JBinary {
        // for i in 0..10 { for j in 0..10 { r2 += 1 } }
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
        asm.label("outer");
        asm.push(Inst::mov(Operand::reg(Reg::R1), Operand::imm(0)));
        asm.label("inner");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R2),
            Operand::imm(1),
        ));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R1),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R1), Operand::imm(10)));
        asm.push_branch(Cond::Lt, "inner");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::imm(10)));
        asm.push_branch(Cond::Lt, "outer");
        asm.push(Inst::Halt);
        asm.finish_binary("main").unwrap()
    }

    #[test]
    fn finds_nested_loops_with_correct_depths() {
        let bin = nested_loop_binary();
        let f = &recover_functions(&bin).unwrap()[0];
        let doms = Dominators::compute(f);
        let loops = find_loops(f, &doms);
        assert_eq!(loops.len(), 2);
        let outer = &loops[0];
        let inner = &loops[1];
        assert!(outer.num_blocks() > inner.num_blocks());
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(inner.blocks.iter().all(|b| outer.contains(*b)));
    }

    #[test]
    fn loop_structure_fields_are_consistent() {
        let bin = nested_loop_binary();
        let f = &recover_functions(&bin).unwrap()[0];
        let doms = Dominators::compute(f);
        for l in find_loops(f, &doms) {
            assert!(l.contains(l.header));
            for latch in &l.latches {
                assert!(l.contains(*latch), "latch must be inside the loop");
            }
            for e in &l.exit_blocks {
                assert!(l.contains(*e));
            }
            for t in &l.exit_targets {
                assert!(!l.contains(*t));
            }
            for p in &l.preheaders {
                assert!(!l.contains(*p));
            }
            assert!(!l.exit_blocks.is_empty(), "loops here always terminate");
            assert!(!l.preheaders.is_empty());
        }
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(1)));
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let f = &recover_functions(&bin).unwrap()[0];
        let doms = Dominators::compute(f);
        assert!(find_loops(f, &doms).is_empty());
    }
}
