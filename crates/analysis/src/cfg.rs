//! Function discovery and control-flow-graph recovery from a stripped binary.

use crate::error::Result;
use janus_ir::{decode_at, ControlFlow, DecodedInst, Inst, JBinary, INST_SIZE};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Index of a basic block within its function's CFG.
pub type BlockId = usize;

/// A basic block: a maximal single-entry, single-exit-point instruction
/// sequence.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// This block's index in [`FunctionCfg::blocks`].
    pub id: BlockId,
    /// Address of the first instruction.
    pub start: u64,
    /// Address one past the last instruction.
    pub end: u64,
    /// The decoded instructions of the block.
    pub insts: Vec<DecodedInst>,
    /// Successor blocks (within the same function).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl BasicBlock {
    /// The block's terminating instruction.
    #[must_use]
    pub fn terminator(&self) -> Option<&DecodedInst> {
        self.insts.last()
    }

    /// Returns `true` if the block contains the instruction at `addr`.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the block has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The control-flow graph of one recovered function.
#[derive(Debug, Clone)]
pub struct FunctionCfg {
    /// Entry address of the function.
    pub entry: u64,
    /// Name from the symbol table, when the binary is not stripped.
    pub name: Option<String>,
    /// Basic blocks; index 0 is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// Map from block start address to block id.
    pub block_at: HashMap<u64, BlockId>,
    /// Direct call targets made by this function.
    pub callees: Vec<u64>,
    /// `true` if the function contains indirect jumps or indirect calls,
    /// which prevent complete CFG recovery.
    pub has_indirect_flow: bool,
    /// `true` if the function contains system calls.
    pub has_syscall: bool,
    /// External (PLT) calls made by this function, by PLT index.
    pub external_calls: Vec<u32>,
}

impl FunctionCfg {
    /// The block starting at `addr`, if any.
    #[must_use]
    pub fn block_starting_at(&self, addr: u64) -> Option<&BasicBlock> {
        self.block_at.get(&addr).map(|&id| &self.blocks[id])
    }

    /// The block containing the instruction at `addr`, if any.
    #[must_use]
    pub fn block_containing(&self, addr: u64) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.contains(addr))
    }

    /// Total number of instructions across all blocks.
    #[must_use]
    pub fn num_instructions(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }
}

/// Recovers every function reachable from the binary's entry point (plus any
/// function symbols present), and builds a CFG for each.
///
/// # Errors
///
/// Returns an error if instruction decoding fails.
pub fn recover_functions(binary: &JBinary) -> Result<Vec<FunctionCfg>> {
    let mut roots: Vec<u64> = vec![binary.entry()];
    for sym in binary.symbols() {
        if sym.kind == janus_ir::SymbolKind::Function && !roots.contains(&sym.addr) {
            roots.push(sym.addr);
        }
    }
    let mut discovered: BTreeSet<u64> = roots.iter().copied().collect();
    let mut queue: VecDeque<u64> = roots.into_iter().collect();
    let mut functions = Vec::new();
    let mut seen_entries = HashSet::new();
    while let Some(entry) = queue.pop_front() {
        if !seen_entries.insert(entry) {
            continue;
        }
        if !binary.text_contains(entry) {
            continue;
        }
        let cfg = recover_function(binary, entry)?;
        for callee in &cfg.callees {
            if binary.text_contains(*callee) && discovered.insert(*callee) {
                queue.push_back(*callee);
            }
        }
        functions.push(cfg);
    }
    Ok(functions)
}

/// Recovers the CFG of the single function whose entry point is `entry`.
///
/// # Errors
///
/// Returns an error if instruction decoding fails.
pub fn recover_function(binary: &JBinary, entry: u64) -> Result<FunctionCfg> {
    let name = binary
        .symbols()
        .iter()
        .find(|s| s.kind == janus_ir::SymbolKind::Function && s.addr == entry)
        .map(|s| s.name.clone());

    // Pass 1: explore reachable instructions, recording leaders (block start
    // addresses), intra-procedural edges, calls and hazards.
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(entry);
    let mut edges: Vec<(u64, u64)> = Vec::new(); // (from-instruction, to-leader)
    let mut callees = Vec::new();
    let mut external_calls = Vec::new();
    let mut has_indirect_flow = false;
    let mut has_syscall = false;

    let mut work = vec![entry];
    while let Some(addr) = work.pop() {
        if visited.contains(&addr) || !binary.text_contains(addr) {
            continue;
        }
        visited.insert(addr);
        let inst = decode_at(binary.text_base(), binary.text(), addr)?;
        let next = addr + INST_SIZE as u64;
        if matches!(inst, Inst::Syscall { .. }) {
            has_syscall = true;
        }
        match inst.control_flow() {
            ControlFlow::FallThrough => work.push(next),
            ControlFlow::Jump(target) => {
                leaders.insert(target);
                edges.push((addr, target));
                work.push(target);
            }
            ControlFlow::Branch(target) => {
                leaders.insert(target);
                leaders.insert(next);
                edges.push((addr, target));
                edges.push((addr, next));
                work.push(target);
                work.push(next);
            }
            ControlFlow::IndirectJump => {
                has_indirect_flow = true;
                // Target unknown: the path ends here for static purposes.
            }
            ControlFlow::Call(target) => {
                callees.push(target);
                leaders.insert(next);
                edges.push((addr, next));
                work.push(next);
            }
            ControlFlow::IndirectCall => {
                if let Inst::CallExt { plt } = inst {
                    external_calls.push(plt);
                } else {
                    has_indirect_flow = true;
                }
                leaders.insert(next);
                edges.push((addr, next));
                work.push(next);
            }
            ControlFlow::Return | ControlFlow::Halt => {}
        }
    }

    // Pass 2: build blocks from the visited instructions, split at leaders.
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut block_at: HashMap<u64, BlockId> = HashMap::new();
    let visited_vec: Vec<u64> = visited.iter().copied().collect();
    let mut i = 0usize;
    while i < visited_vec.len() {
        let start = visited_vec[i];
        // A block starts at a leader or at the first visited instruction after
        // a gap; collect instructions until a terminator or the next leader.
        let mut insts = Vec::new();
        let mut addr = start;
        loop {
            let inst = decode_at(binary.text_base(), binary.text(), addr)?;
            let is_term = inst.is_terminator();
            insts.push(DecodedInst { addr, inst });
            i += 1;
            let next = addr + INST_SIZE as u64;
            if is_term {
                break;
            }
            // Stop if the next instruction is a leader, was not visited, or is
            // not contiguous in the visited set.
            if leaders.contains(&next)
                || !visited.contains(&next)
                || visited_vec.get(i).copied() != Some(next)
            {
                break;
            }
            addr = next;
        }
        let end = insts.last().map_or(start, |d| d.addr + INST_SIZE as u64);
        let id = blocks.len();
        block_at.insert(start, id);
        blocks.push(BasicBlock {
            id,
            start,
            end,
            insts,
            succs: Vec::new(),
            preds: Vec::new(),
        });
    }

    // Pass 3: wire up edges. Fall-through edges between consecutive blocks
    // exist when the earlier block does not end in an unconditional transfer.
    let mut succ_sets: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); blocks.len()];
    for b in 0..blocks.len() {
        let last = blocks[b].insts.last().cloned();
        if let Some(last) = last {
            match last.inst.control_flow() {
                ControlFlow::FallThrough | ControlFlow::Call(_) | ControlFlow::IndirectCall => {
                    let next = last.addr + INST_SIZE as u64;
                    if let Some(&to) = block_at.get(&next) {
                        succ_sets[b].insert(to);
                    }
                }
                ControlFlow::Jump(t) => {
                    if let Some(&to) = block_at.get(&t) {
                        succ_sets[b].insert(to);
                    }
                }
                ControlFlow::Branch(t) => {
                    if let Some(&to) = block_at.get(&t) {
                        succ_sets[b].insert(to);
                    }
                    let next = last.addr + INST_SIZE as u64;
                    if let Some(&to) = block_at.get(&next) {
                        succ_sets[b].insert(to);
                    }
                }
                ControlFlow::IndirectJump | ControlFlow::Return | ControlFlow::Halt => {}
            }
        }
        // Blocks that were split because the next address is a leader fall
        // through implicitly.
        if let Some(last) = blocks[b].insts.last() {
            if !last.inst.is_terminator() {
                let next = last.addr + INST_SIZE as u64;
                if let Some(&to) = block_at.get(&next) {
                    succ_sets[b].insert(to);
                }
            }
        }
    }
    let _ = edges;
    for (b, succs) in succ_sets.iter().enumerate() {
        blocks[b].succs = succs.iter().copied().collect();
        for &s in succs {
            blocks[s].preds.push(b);
        }
    }

    // Ensure the entry block is block 0 (swap if necessary).
    if let Some(&entry_id) = block_at.get(&entry) {
        if entry_id != 0 {
            blocks.swap(0, entry_id);
            // Fix ids and edges after the swap.
            let remap = |id: BlockId| -> BlockId {
                if id == 0 {
                    entry_id
                } else if id == entry_id {
                    0
                } else {
                    id
                }
            };
            for (new_id, b) in blocks.iter_mut().enumerate() {
                b.id = new_id;
                b.succs = b.succs.iter().map(|&s| remap(s)).collect();
                b.preds = b.preds.iter().map(|&p| remap(p)).collect();
            }
            for (addr, id) in block_at.iter_mut() {
                let _ = addr;
                *id = remap(*id);
            }
        }
    }

    Ok(FunctionCfg {
        entry,
        name,
        blocks,
        block_at,
        callees,
        has_indirect_flow,
        has_syscall,
        external_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_ir::{AluOp, AsmBuilder, Cond, Operand, Reg};

    fn loop_binary() -> JBinary {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
        asm.label("loop");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::imm(10)));
        asm.push_branch(Cond::Lt, "loop");
        asm.push_call("helper");
        asm.push(Inst::Halt);
        asm.function("helper");
        asm.push(Inst::Ret);
        asm.finish_binary("main").unwrap()
    }

    #[test]
    fn recovers_two_functions() {
        let bin = loop_binary();
        let funcs = recover_functions(&bin).unwrap();
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].entry, bin.entry());
        assert_eq!(funcs[0].callees.len(), 1);
        assert_eq!(funcs[1].entry, funcs[0].callees[0]);
    }

    #[test]
    fn recovers_functions_from_stripped_binary() {
        let mut bin = loop_binary();
        bin.strip();
        let funcs = recover_functions(&bin).unwrap();
        assert_eq!(funcs.len(), 2, "call targets are still discovered");
        assert!(funcs[0].name.is_none());
    }

    #[test]
    fn loop_creates_a_cycle_in_the_cfg() {
        let bin = loop_binary();
        let funcs = recover_functions(&bin).unwrap();
        let main = &funcs[0];
        // Entry block is block 0 and starts at the function entry.
        assert_eq!(main.blocks[0].start, main.entry);
        // Some block must have a successor with a smaller start address (the
        // back edge).
        let has_back_edge = main.blocks.iter().any(|b| {
            b.succs
                .iter()
                .any(|&s| main.blocks[s].start <= b.start && main.blocks[s].start != b.start + 1)
        });
        assert!(has_back_edge, "expected a back edge in {main:#?}");
    }

    #[test]
    fn every_instruction_belongs_to_exactly_one_block() {
        let bin = loop_binary();
        let funcs = recover_functions(&bin).unwrap();
        for f in &funcs {
            let mut seen = std::collections::HashSet::new();
            for b in &f.blocks {
                for d in &b.insts {
                    assert!(seen.insert(d.addr), "instruction {:#x} duplicated", d.addr);
                }
            }
        }
    }

    #[test]
    fn hazards_are_detected() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::Syscall { num: 1 });
        asm.push(Inst::JmpInd {
            target: Operand::reg(Reg::R1),
        });
        let bin = asm.finish_binary("main").unwrap();
        let funcs = recover_functions(&bin).unwrap();
        assert!(funcs[0].has_syscall);
        assert!(funcs[0].has_indirect_flow);
    }

    #[test]
    fn external_calls_are_recorded() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push_call_ext("pow");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let funcs = recover_functions(&bin).unwrap();
        assert_eq!(funcs[0].external_calls, vec![0]);
    }

    #[test]
    fn block_lookup_helpers() {
        let bin = loop_binary();
        let funcs = recover_functions(&bin).unwrap();
        let main = &funcs[0];
        let b0 = &main.blocks[0];
        assert!(main.block_starting_at(b0.start).is_some());
        assert!(main.block_containing(b0.start).is_some());
        assert!(main.block_starting_at(0xdead).is_none());
        assert!(main.num_instructions() >= 5);
    }
}
