//! Error type for static analysis.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, AnalysisError>;

/// Errors raised while analysing a binary.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The binary's text section could not be decoded.
    Decode {
        /// The underlying decoder error, formatted.
        reason: String,
    },
    /// The requested entity does not exist.
    NotFound {
        /// What was being looked for.
        what: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Decode { reason } => write!(f, "failed to decode binary: {reason}"),
            AnalysisError::NotFound { what } => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<janus_ir::IrError> for AnalysisError {
    fn from(e: janus_ir::IrError) -> Self {
        AnalysisError::Decode {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: AnalysisError = janus_ir::IrError::InvalidRegister { index: 40 }.into();
        assert!(e.to_string().contains("decode"));
        assert!(AnalysisError::NotFound {
            what: "loop 3".into()
        }
        .to_string()
        .contains("loop 3"));
    }
}
