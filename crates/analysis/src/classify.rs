//! Loop characterisation: combining induction, memory and dependence analysis
//! into the paper's five loop categories.

use crate::cfg::FunctionCfg;
use crate::depend::{analyze_dependences, BoundsCheckPair, Dependence, Reduction};
use crate::induction::{find_induction, InductionVar};
use crate::liveness::Liveness;
use crate::loops::{LoopId, NaturalLoop};
use crate::memory::{collect_accesses, MemAccess};
use janus_ir::{Inst, JBinary, Reg};

/// The paper's loop categories (section II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopCategory {
    /// Type A: provably DOALL with only induction/reduction carried values.
    StaticDoall,
    /// Type B: a cross-iteration dependence was proved statically.
    StaticDependence,
    /// Type C: DOALL modulo runtime checks or speculation.
    DynamicDoall,
    /// Type D: profiling observed an actual cross-iteration dependence.
    DynamicDependence,
    /// A *may*-dependent loop (data-dependent subscripts, sparse scatters):
    /// no dependence was proved, but independence cannot be proved or
    /// bounds-checked either. Amenable to Block-STM-style iteration-level
    /// speculation (`janus-spec`); serialised by the seed pipeline.
    Speculative,
    /// Not a candidate for parallelisation at all.
    Incompatible,
}

impl LoopCategory {
    /// Short label used in reports and figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LoopCategory::StaticDoall => "Static DOALL",
            LoopCategory::StaticDependence => "Static Dependence",
            LoopCategory::DynamicDoall => "Dynamic DOALL",
            LoopCategory::DynamicDependence => "Dynamic Dependence",
            LoopCategory::Speculative => "Speculative",
            LoopCategory::Incompatible => "Incompatible",
        }
    }

    /// Returns `true` for the categories Janus can parallelise without
    /// iteration-level speculation (A and C).
    #[must_use]
    pub fn is_parallelisable(self) -> bool {
        matches!(self, LoopCategory::StaticDoall | LoopCategory::DynamicDoall)
    }

    /// Returns `true` for loops the speculative DOACROSS engine can attempt.
    #[must_use]
    pub fn is_speculation_candidate(self) -> bool {
        self == LoopCategory::Speculative
    }
}

/// Everything Janus knows statically about one loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Global loop id (assigned by [`crate::analyze`]).
    pub id: usize,
    /// Index of the containing function in [`crate::BinaryAnalysis::functions`].
    pub function: usize,
    /// Entry address of the containing function.
    pub function_entry: u64,
    /// Loop id within the function.
    pub loop_in_function: LoopId,
    /// Address of the loop header block.
    pub header_addr: u64,
    /// Start addresses of every block in the loop.
    pub block_addrs: Vec<u64>,
    /// Start addresses of the preheader blocks (loop entry points).
    pub preheader_addrs: Vec<u64>,
    /// Addresses of the terminator instructions of exit blocks.
    pub exit_branch_addrs: Vec<u64>,
    /// Start addresses of the blocks control flow reaches after leaving the loop.
    pub exit_target_addrs: Vec<u64>,
    /// Addresses of the latch branches (back edges).
    pub latch_branch_addrs: Vec<u64>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// Parent loop id within the same function.
    pub parent_in_function: Option<LoopId>,
    /// The recognised induction variable, if any.
    pub induction: Option<InductionVar>,
    /// Every explicit memory access in the loop.
    pub accesses: Vec<MemAccess>,
    /// Recognised reductions.
    pub reductions: Vec<Reduction>,
    /// Proved cross-iteration dependences.
    pub dependences: Vec<Dependence>,
    /// Array pairs requiring runtime bounds checks.
    pub bounds_checks: Vec<BoundsCheckPair>,
    /// Loop-carried scalar registers.
    pub scalar_carried: Vec<Reg>,
    /// Read-only stack slots (candidates for `MEM_MAIN_STACK`).
    pub read_only_stack_slots: Vec<i64>,
    /// Registers live on entry to the loop header (must be materialised in
    /// each thread's context).
    pub live_in_regs: Vec<Reg>,
    /// Dead registers at the loop header usable by the DBM as scratch.
    pub dead_regs: Vec<Reg>,
    /// Addresses of external (PLT) calls inside the loop.
    pub external_call_addrs: Vec<u64>,
    /// `true` when the loop contains a system call.
    pub has_syscall: bool,
    /// `true` when the loop contains indirect jumps or calls.
    pub has_indirect: bool,
    /// `true` when the loop contains direct calls to other functions.
    pub has_internal_call: bool,
    /// `true` when some memory access could not be analysed.
    pub has_unknown_access: bool,
    /// Total number of instructions in the loop body.
    pub num_instructions: usize,
    /// The assigned category.
    pub category: LoopCategory,
    /// Human-readable reason when the loop is incompatible.
    pub incompatible_reason: Option<String>,
}

impl LoopInfo {
    /// Statically known trip count, if any.
    #[must_use]
    pub fn trip_count(&self) -> Option<u64> {
        self.induction.as_ref().and_then(|iv| iv.trip_count)
    }

    /// Returns `true` if the loop needs runtime array-bounds checks before
    /// parallel execution.
    #[must_use]
    pub fn needs_bounds_checks(&self) -> bool {
        !self.bounds_checks.is_empty()
    }

    /// Returns `true` if the loop needs speculation (it calls dynamically
    /// discovered code).
    #[must_use]
    pub fn needs_speculation(&self) -> bool {
        !self.external_call_addrs.is_empty()
    }
}

/// Classifies one natural loop.
#[must_use]
pub fn classify_loop(
    _binary: &JBinary,
    func: &FunctionCfg,
    func_idx: usize,
    nl: &NaturalLoop,
    all_loops: &[NaturalLoop],
    live: &Liveness,
) -> LoopInfo {
    let induction = find_induction(func, nl);
    let accesses = collect_accesses(func, nl, induction.as_ref());
    let deps = analyze_dependences(func, nl, induction.as_ref(), &accesses, live);

    // Structural hazard scan.
    let mut has_syscall = false;
    let mut has_indirect = false;
    let mut has_internal_call = false;
    let mut external_call_addrs = Vec::new();
    let mut num_instructions = 0usize;
    for &bid in &nl.blocks {
        for d in &func.blocks[bid].insts {
            num_instructions += 1;
            match &d.inst {
                Inst::Syscall { .. } => has_syscall = true,
                Inst::JmpInd { .. } | Inst::CallInd { .. } => has_indirect = true,
                Inst::Call { .. } => has_internal_call = true,
                Inst::CallExt { .. } => external_call_addrs.push(d.addr),
                _ => {}
            }
        }
    }

    let live_in_regs: Vec<Reg> = {
        let mut v: Vec<Reg> = live.live_in(nl.header).iter().copied().collect();
        v.sort_by_key(|r| r.raw());
        v
    };
    let dead_regs = live.dead_gprs_at(nl.header);

    // Category decision.
    let mut incompatible_reason = None;
    let category = if has_syscall {
        incompatible_reason = Some("loop performs IO or other system calls".to_string());
        LoopCategory::Incompatible
    } else if has_indirect {
        incompatible_reason = Some("loop contains indirect control flow".to_string());
        LoopCategory::Incompatible
    } else if has_internal_call {
        incompatible_reason = Some(
            "loop calls other functions (inter-procedural parallelisation not supported)"
                .to_string(),
        );
        LoopCategory::Incompatible
    } else if induction.is_none() {
        incompatible_reason = Some("no recognisable induction variable".to_string());
        LoopCategory::Incompatible
    } else if induction.as_ref().is_none_or(|iv| iv.bound.is_none()) {
        incompatible_reason = Some("loop bound could not be recognised".to_string());
        LoopCategory::Incompatible
    } else if !deps.dependences.is_empty()
        || !deps.scalar_carried.is_empty()
        || !deps.carried_stack_slots.is_empty()
    {
        LoopCategory::StaticDependence
    } else if deps.has_unknown_access && external_call_addrs.is_empty() {
        // No proved dependence, but an access that cannot be expressed in
        // terms of the induction variable (e.g. `hist[idx[i]]`): a *may*
        // dependence that bounds checks cannot discharge. Iteration-level
        // speculation can run it; everything else must serialise it.
        LoopCategory::Speculative
    } else if !deps.bounds_checks.is_empty()
        || !external_call_addrs.is_empty()
        || deps.has_unknown_access
    {
        LoopCategory::DynamicDoall
    } else {
        LoopCategory::StaticDoall
    };

    let exit_branch_addrs = nl
        .exit_blocks
        .iter()
        .filter_map(|&b| func.blocks[b].terminator().map(|d| d.addr))
        .collect();
    let latch_branch_addrs = nl
        .latches
        .iter()
        .filter_map(|&b| func.blocks[b].terminator().map(|d| d.addr))
        .collect();

    LoopInfo {
        id: 0,
        function: func_idx,
        function_entry: func.entry,
        loop_in_function: nl.id,
        header_addr: func.blocks[nl.header].start,
        block_addrs: nl.blocks.iter().map(|&b| func.blocks[b].start).collect(),
        preheader_addrs: nl
            .preheaders
            .iter()
            .map(|&b| func.blocks[b].start)
            .collect(),
        exit_branch_addrs,
        exit_target_addrs: nl
            .exit_targets
            .iter()
            .map(|&b| func.blocks[b].start)
            .collect(),
        latch_branch_addrs,
        depth: nl.depth,
        parent_in_function: nl.parent.map(|p| all_loops[p].id),
        induction,
        accesses,
        reductions: deps.reductions,
        dependences: deps.dependences,
        bounds_checks: deps.bounds_checks,
        scalar_carried: deps.scalar_carried,
        read_only_stack_slots: deps.read_only_stack_slots,
        live_in_regs,
        dead_regs,
        external_call_addrs,
        has_syscall,
        has_indirect,
        has_internal_call,
        has_unknown_access: deps.has_unknown_access,
        num_instructions,
        category,
        incompatible_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use janus_compile::{ast, CompileOptions, Compiler};

    fn kernel_program(body: Vec<ast::Stmt>, locals: &[(&str, ast::Ty)]) -> ast::Program {
        let mut f = ast::Function::new("main");
        for (n, t) in locals {
            f = f.local(*n, *t);
        }
        ast::Program::builder("t")
            .global_f64("a", 256)
            .global_f64("b", 256)
            .global_f64("c", 256)
            .global_i64("ints", 256)
            .function(f.body(body))
            .build()
    }

    fn analyze_program(p: &ast::Program) -> crate::BinaryAnalysis {
        let bin = Compiler::with_options(CompileOptions::gcc_o2())
            .compile(p)
            .unwrap();
        analyze(&bin).unwrap()
    }

    #[test]
    fn elementwise_loop_is_static_doall() {
        let p = kernel_program(
            vec![ast::Stmt::simple_for(
                "i",
                ast::Expr::const_i(0),
                ast::Expr::const_i(256),
                vec![ast::Stmt::assign(
                    ast::LValue::store("b", ast::Expr::var("i")),
                    ast::Expr::mul(
                        ast::Expr::load("a", ast::Expr::var("i")),
                        ast::Expr::const_f(2.0),
                    ),
                )],
            )],
            &[("i", ast::Ty::I64)],
        );
        let analysis = analyze_program(&p);
        assert_eq!(analysis.loops.len(), 1);
        let l = &analysis.loops[0];
        assert_eq!(l.category, LoopCategory::StaticDoall, "{l:#?}");
        assert!(l.trip_count().is_some());
        assert!(!l.needs_bounds_checks());
    }

    #[test]
    fn reduction_loop_is_still_static_doall() {
        let p = kernel_program(
            vec![
                ast::Stmt::assign(ast::LValue::var("s"), ast::Expr::const_f(0.0)),
                ast::Stmt::simple_for(
                    "i",
                    ast::Expr::const_i(0),
                    ast::Expr::const_i(256),
                    vec![ast::Stmt::assign(
                        ast::LValue::var("s"),
                        ast::Expr::add(
                            ast::Expr::var("s"),
                            ast::Expr::load("a", ast::Expr::var("i")),
                        ),
                    )],
                ),
                ast::Stmt::print(ast::Expr::var("s")),
            ],
            &[("i", ast::Ty::I64), ("s", ast::Ty::F64)],
        );
        let analysis = analyze_program(&p);
        let l = &analysis.loops[0];
        assert_eq!(l.category, LoopCategory::StaticDoall, "{l:#?}");
        assert_eq!(l.reductions.len(), 1, "the accumulator is a reduction");
    }

    #[test]
    fn recurrence_loop_is_static_dependence() {
        // a[i] = a[i - 1] + 1.0
        let p = kernel_program(
            vec![ast::Stmt::simple_for(
                "i",
                ast::Expr::const_i(1),
                ast::Expr::const_i(256),
                vec![ast::Stmt::assign(
                    ast::LValue::store("a", ast::Expr::var("i")),
                    ast::Expr::add(
                        ast::Expr::load(
                            "a",
                            ast::Expr::sub(ast::Expr::var("i"), ast::Expr::const_i(1)),
                        ),
                        ast::Expr::const_f(1.0),
                    ),
                )],
            )],
            &[("i", ast::Ty::I64)],
        );
        let analysis = analyze_program(&p);
        let l = &analysis.loops[0];
        assert_eq!(l.category, LoopCategory::StaticDependence, "{l:#?}");
    }

    #[test]
    fn io_in_loop_is_incompatible() {
        let p = kernel_program(
            vec![ast::Stmt::simple_for(
                "i",
                ast::Expr::const_i(0),
                ast::Expr::const_i(16),
                vec![ast::Stmt::print(ast::Expr::var("i"))],
            )],
            &[("i", ast::Ty::I64)],
        );
        let analysis = analyze_program(&p);
        let l = &analysis.loops[0];
        assert_eq!(l.category, LoopCategory::Incompatible);
        assert!(l
            .incompatible_reason
            .as_ref()
            .unwrap()
            .contains("system calls"));
    }

    #[test]
    fn pointer_kernel_requires_bounds_checks_and_is_dynamic_doall() {
        let p = ast::Program::builder("ptr")
            .global_f64("x", 128)
            .global_f64("y", 128)
            .function(
                ast::Function::new("kernel")
                    .param("d", ast::Ty::Ptr)
                    .param("s", ast::Ty::Ptr)
                    .param("n", ast::Ty::I64)
                    .local("i", ast::Ty::I64)
                    .body(vec![ast::Stmt::simple_for(
                        "i",
                        ast::Expr::const_i(0),
                        ast::Expr::var("n"),
                        vec![ast::Stmt::assign(
                            ast::LValue::store_ptr("d", ast::Expr::var("i")),
                            ast::Expr::add(
                                ast::Expr::load_ptr("s", ast::Expr::var("i")),
                                ast::Expr::const_f(1.0),
                            ),
                        )],
                    )]),
            )
            .function(ast::Function::new("main").body(vec![ast::Stmt::Call {
                name: "kernel".into(),
                args: vec![
                    ast::Expr::addr_of("y"),
                    ast::Expr::addr_of("x"),
                    ast::Expr::const_i(128),
                ],
                ret: None,
            }]))
            .build();
        let analysis = analyze_program(&p);
        let l = analysis
            .loops
            .iter()
            .find(|l| !l.accesses.is_empty())
            .expect("kernel loop found");
        assert_eq!(l.category, LoopCategory::DynamicDoall, "{l:#?}");
        assert!(l.needs_bounds_checks());
    }

    #[test]
    fn external_call_in_loop_is_dynamic_doall_needing_speculation() {
        let p = kernel_program(
            vec![ast::Stmt::simple_for(
                "i",
                ast::Expr::const_i(0),
                ast::Expr::const_i(64),
                vec![
                    ast::Stmt::call_ext(
                        "sqrt",
                        vec![ast::Expr::load("a", ast::Expr::var("i"))],
                        Some(ast::LValue::var("t")),
                    ),
                    ast::Stmt::assign(
                        ast::LValue::store("b", ast::Expr::var("i")),
                        ast::Expr::var("t"),
                    ),
                ],
            )],
            &[("i", ast::Ty::I64), ("t", ast::Ty::F64)],
        );
        let analysis = analyze_program(&p);
        let l = analysis
            .loops
            .iter()
            .find(|l| !l.external_call_addrs.is_empty())
            .expect("loop with external call");
        assert_eq!(l.category, LoopCategory::DynamicDoall, "{l:#?}");
        assert!(l.needs_speculation());
    }

    #[test]
    fn data_dependent_subscript_is_speculative() {
        // ints[ints[i]] += 1: the store address depends on loaded data, so
        // independence can neither be proved nor bounds-checked — the loop is
        // a speculation candidate.
        let p = kernel_program(
            vec![ast::Stmt::simple_for(
                "i",
                ast::Expr::const_i(0),
                ast::Expr::const_i(256),
                vec![ast::Stmt::assign(
                    ast::LValue::store("ints", ast::Expr::load("ints", ast::Expr::var("i"))),
                    ast::Expr::add(
                        ast::Expr::load("ints", ast::Expr::load("ints", ast::Expr::var("i"))),
                        ast::Expr::const_i(1),
                    ),
                )],
            )],
            &[("i", ast::Ty::I64)],
        );
        let analysis = analyze_program(&p);
        let l = analysis
            .loops
            .iter()
            .find(|l| l.has_unknown_access)
            .expect("loop with a data-dependent access");
        assert_eq!(l.category, LoopCategory::Speculative, "{l:#?}");
        assert!(l.category.is_speculation_candidate());
        assert!(!l.category.is_parallelisable());
    }

    #[test]
    fn indirect_call_in_loop_is_incompatible() {
        let p = ast::Program::builder("ind")
            .global_i64("table", 4)
            .function(ast::Function::new("callee").body(vec![]))
            .function(
                ast::Function::new("main")
                    .local("i", ast::Ty::I64)
                    .body(vec![
                        ast::Stmt::assign(
                            ast::LValue::store("table", ast::Expr::const_i(0)),
                            ast::Expr::AddrOfFn("callee".into()),
                        ),
                        ast::Stmt::simple_for(
                            "i",
                            ast::Expr::const_i(0),
                            ast::Expr::const_i(4),
                            vec![ast::Stmt::CallIndirect {
                                table: "table".into(),
                                index: ast::Expr::const_i(0),
                            }],
                        ),
                    ]),
            )
            .build();
        let analysis = analyze_program(&p);
        let l = analysis
            .loops
            .iter()
            .find(|l| l.has_indirect)
            .expect("loop with indirect call");
        assert_eq!(l.category, LoopCategory::Incompatible);
    }

    #[test]
    fn category_histogram_counts_all_loops() {
        let p = kernel_program(
            vec![
                ast::Stmt::simple_for(
                    "i",
                    ast::Expr::const_i(0),
                    ast::Expr::const_i(64),
                    vec![ast::Stmt::assign(
                        ast::LValue::store("b", ast::Expr::var("i")),
                        ast::Expr::load("a", ast::Expr::var("i")),
                    )],
                ),
                ast::Stmt::simple_for(
                    "i",
                    ast::Expr::const_i(1),
                    ast::Expr::const_i(64),
                    vec![ast::Stmt::assign(
                        ast::LValue::store("c", ast::Expr::var("i")),
                        ast::Expr::load(
                            "c",
                            ast::Expr::sub(ast::Expr::var("i"), ast::Expr::const_i(1)),
                        ),
                    )],
                ),
            ],
            &[("i", ast::Ty::I64)],
        );
        let analysis = analyze_program(&p);
        let hist = analysis.category_histogram();
        let total: usize = hist.iter().map(|(_, n)| n).sum();
        assert_eq!(total, analysis.loops.len());
        assert_eq!(total, 2);
    }
}
