//! Induction-variable recognition and loop-bound extraction.
//!
//! The paper identifies a loop's iterator by constructing a cyclic expression
//! through the phi node of the loop header and solving its range from the
//! exit condition. In this reproduction the same result is obtained by
//! pattern analysis over the loop body: the induction variable is the unique
//! storage location that is updated by a constant step on every path around
//! the loop and that controls the back-edge (or exit) comparison.

use crate::cfg::FunctionCfg;
use crate::loops::NaturalLoop;
use janus_ir::{AluOp, Cond, Inst, MemRef, Operand, Reg};

/// A storage location abstracted as a "versioned variable" of the analysis:
/// a register, a stack slot (frame-pointer relative) or an absolute global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarRef {
    /// An architectural register.
    Reg(Reg),
    /// A stack slot at `[fp + offset]`.
    Stack(i64),
    /// An absolute data address.
    Global(u64),
}

impl VarRef {
    /// Builds a `VarRef` from an operand when the operand shape corresponds to
    /// a scalar variable location.
    #[must_use]
    pub fn from_operand(op: &Operand) -> Option<VarRef> {
        match op {
            Operand::Reg(r) => Some(VarRef::Reg(*r)),
            Operand::Mem(m) => VarRef::from_memref(m),
            Operand::Imm(_) => None,
        }
    }

    /// Builds a `VarRef` from a memory reference that denotes a scalar
    /// (stack slot or absolute global), as opposed to an indexed array access.
    #[must_use]
    pub fn from_memref(m: &MemRef) -> Option<VarRef> {
        if m.index.is_some() {
            return None;
        }
        match m.base {
            Some(b) if b == Reg::FP || b == Reg::SP => Some(VarRef::Stack(m.disp)),
            None => Some(VarRef::Global(m.disp as u64)),
            Some(_) => None,
        }
    }
}

/// The bound controlling a loop's back edge.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopBound {
    /// The operand compared against the induction variable.
    pub bound: Operand,
    /// The branch condition under which the loop continues.
    pub continue_cond: Cond,
    /// Address of the comparison instruction.
    pub cmp_addr: u64,
    /// Address of the conditional branch.
    pub branch_addr: u64,
    /// The bound value when it is a compile-time constant.
    pub constant: Option<i64>,
}

/// A recognised induction variable.
#[derive(Debug, Clone, PartialEq)]
pub struct InductionVar {
    /// Where the induction variable lives.
    pub var: VarRef,
    /// The per-iteration step.
    pub step: i64,
    /// Addresses of the update instructions (one per unrolled copy).
    pub update_addrs: Vec<u64>,
    /// The loop bound, when the controlling comparison was recognised.
    pub bound: Option<LoopBound>,
    /// The initial value, when a unique initialisation was found in a
    /// preheader block.
    pub init: Option<Operand>,
    /// Statically known trip count, when the initial value and the bound are
    /// both constants.
    pub trip_count: Option<u64>,
}

/// Attempts to recognise the induction variable of a natural loop.
#[must_use]
pub fn find_induction(func: &FunctionCfg, nl: &NaturalLoop) -> Option<InductionVar> {
    // Step 1: collect candidate updates `var += imm` inside the loop.
    let mut candidates: Vec<(VarRef, i64, u64)> = Vec::new();
    for &bid in &nl.blocks {
        for d in &func.blocks[bid].insts {
            if let Inst::Alu {
                op: op @ (AluOp::Add | AluOp::Sub),
                dst,
                src: Operand::Imm(v),
            } = &d.inst
            {
                if let Some(var) = VarRef::from_operand(dst) {
                    let step = if *op == AluOp::Add { *v } else { -*v };
                    candidates.push((var, step, d.addr));
                }
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }

    // Step 2: find the comparison + conditional branch on a latch block that
    // controls the back edge.
    let mut control: Option<(VarRef, LoopBound)> = None;
    for &latch in &nl.latches {
        let block = &func.blocks[latch];
        let mut last_cmp: Option<(u64, Operand, Operand)> = None;
        for d in &block.insts {
            match &d.inst {
                Inst::Cmp { lhs, rhs } => last_cmp = Some((d.addr, *lhs, *rhs)),
                Inst::Jcc { cond, target } => {
                    let header_addr = func.blocks[nl.header].start;
                    if *target == header_addr {
                        if let Some((cmp_addr, lhs, rhs)) = last_cmp {
                            if let Some(var) = VarRef::from_operand(&lhs) {
                                if candidates.iter().any(|(v, _, _)| *v == var) {
                                    control = Some((
                                        var,
                                        LoopBound {
                                            bound: rhs,
                                            continue_cond: *cond,
                                            cmp_addr,
                                            branch_addr: d.addr,
                                            constant: rhs.as_imm(),
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Step 3: also accept header-controlled loops (comparison in the header,
    // exit branch leaving the loop) when no latch control was found.
    if control.is_none() {
        let block = &func.blocks[nl.header];
        let mut last_cmp: Option<(u64, Operand, Operand)> = None;
        for d in &block.insts {
            match &d.inst {
                Inst::Cmp { lhs, rhs } => last_cmp = Some((d.addr, *lhs, *rhs)),
                Inst::Jcc { cond, target } => {
                    let leaves_loop = func
                        .block_starting_at(*target)
                        .map(|b| !nl.contains(b.id))
                        .unwrap_or(true);
                    if leaves_loop {
                        if let Some((cmp_addr, lhs, rhs)) = last_cmp {
                            if let Some(var) = VarRef::from_operand(&lhs) {
                                if candidates.iter().any(|(v, _, _)| *v == var) {
                                    control = Some((
                                        var,
                                        LoopBound {
                                            bound: rhs,
                                            continue_cond: cond.negate(),
                                            cmp_addr,
                                            branch_addr: d.addr,
                                            constant: rhs.as_imm(),
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let (var, bound) = control?;

    // Step 4: sum the per-iteration step over every update of the chosen
    // variable (unrolled loops update it once per copy or once by the full
    // unrolled amount).
    let updates: Vec<(i64, u64)> = candidates
        .iter()
        .filter(|(v, _, _)| *v == var)
        .map(|(_, s, a)| (*s, *a))
        .collect();
    let step: i64 = updates.iter().map(|(s, _)| *s).sum();
    if step == 0 {
        return None;
    }
    let update_addrs = updates.iter().map(|(_, a)| *a).collect();

    // Step 5: look for a unique initialisation in a preheader block. A small
    // constant-propagation pass over the preheader resolves the common
    // compiled pattern `mov rScratch, imm ; mov rVar, rScratch`.
    let mut init: Option<Operand> = None;
    for &ph in &nl.preheaders {
        let mut known_consts: std::collections::HashMap<Reg, i64> =
            std::collections::HashMap::new();
        for d in &func.blocks[ph].insts {
            if let Inst::Mov { dst, src } = &d.inst {
                if VarRef::from_operand(dst) == Some(var) {
                    init = match src {
                        Operand::Reg(r) => {
                            known_consts.get(r).map(|v| Operand::Imm(*v)).or(Some(*src))
                        }
                        other => Some(*other),
                    };
                }
                if let (Operand::Reg(r), Operand::Imm(v)) = (dst, src) {
                    known_consts.insert(*r, *v);
                } else if let Operand::Reg(r) = dst {
                    known_consts.remove(r);
                }
            } else {
                for w in d.inst.writes() {
                    known_consts.remove(&w);
                }
            }
        }
    }

    let trip_count = match (&init, &bound.constant) {
        (Some(Operand::Imm(start)), Some(end)) => {
            let span = match bound.continue_cond {
                Cond::Lt | Cond::Below | Cond::Ne => end - start,
                Cond::Le => end - start + 1,
                Cond::Gt => start - end,
                Cond::Ge => start - end + 1,
                _ => 0,
            };
            if span > 0 && step != 0 {
                Some(span.unsigned_abs().div_ceil(step.unsigned_abs()))
            } else {
                None
            }
        }
        _ => None,
    };

    Some(InductionVar {
        var,
        step,
        update_addrs,
        bound: Some(bound),
        init,
        trip_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover_functions;
    use crate::dom::Dominators;
    use crate::loops::find_loops;
    use janus_ir::AsmBuilder;

    fn analyse_first_loop(bin: &janus_ir::JBinary) -> (FunctionCfg, NaturalLoop) {
        let f = recover_functions(bin).unwrap().remove(0);
        let doms = Dominators::compute(&f);
        let loops = find_loops(&f, &doms);
        let l = loops.into_iter().next().expect("loop exists");
        (f, l)
    }

    #[test]
    fn register_induction_with_constant_bounds() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R4), Operand::imm(0)));
        asm.label("loop");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R5),
            Operand::reg(Reg::R4),
        ));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R4),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R4), Operand::imm(100)));
        asm.push_branch(Cond::Lt, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let (f, l) = analyse_first_loop(&bin);
        let iv = find_induction(&f, &l).expect("induction found");
        assert_eq!(iv.var, VarRef::Reg(Reg::R4));
        assert_eq!(iv.step, 1);
        assert_eq!(iv.init, Some(Operand::Imm(0)));
        assert_eq!(iv.trip_count, Some(100));
        assert_eq!(iv.bound.as_ref().unwrap().constant, Some(100));
    }

    #[test]
    fn stack_slot_induction_is_recognised() {
        // O0-style loop: the counter lives at [fp - 8].
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::FP), Operand::reg(Reg::SP)));
        asm.push(Inst::mov(
            Operand::mem(MemRef::base_disp(Reg::FP, -8)),
            Operand::imm(0),
        ));
        asm.label("loop");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::mem(MemRef::base_disp(Reg::FP, -8)),
            Operand::imm(2),
        ));
        asm.push(Inst::cmp(
            Operand::mem(MemRef::base_disp(Reg::FP, -8)),
            Operand::imm(50),
        ));
        asm.push_branch(Cond::Lt, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let (f, l) = analyse_first_loop(&bin);
        let iv = find_induction(&f, &l).expect("induction found");
        assert_eq!(iv.var, VarRef::Stack(-8));
        assert_eq!(iv.step, 2);
        assert_eq!(iv.trip_count, Some(25));
    }

    #[test]
    fn register_bound_has_no_constant_trip_count() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R4), Operand::imm(0)));
        asm.label("loop");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R4),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R4), Operand::reg(Reg::R6)));
        asm.push_branch(Cond::Lt, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let (f, l) = analyse_first_loop(&bin);
        let iv = find_induction(&f, &l).expect("induction found");
        assert_eq!(iv.trip_count, None);
        assert_eq!(iv.bound.as_ref().unwrap().bound, Operand::Reg(Reg::R6));
    }

    #[test]
    fn pointer_chasing_loop_has_no_induction() {
        // while (p != 0) p = *p;  — no constant-step update exists.
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.label("loop");
        asm.push(Inst::mov(
            Operand::reg(Reg::R1),
            Operand::mem(MemRef::base(Reg::R1)),
        ));
        asm.push(Inst::Test {
            lhs: Operand::reg(Reg::R1),
            rhs: Operand::reg(Reg::R1),
        });
        asm.push_branch(Cond::Ne, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let (f, l) = analyse_first_loop(&bin);
        assert!(find_induction(&f, &l).is_none());
    }

    #[test]
    fn varref_from_operand_shapes() {
        assert_eq!(
            VarRef::from_operand(&Operand::reg(Reg::R3)),
            Some(VarRef::Reg(Reg::R3))
        );
        assert_eq!(
            VarRef::from_operand(&Operand::mem(MemRef::base_disp(Reg::FP, -16))),
            Some(VarRef::Stack(-16))
        );
        assert_eq!(
            VarRef::from_operand(&Operand::mem(MemRef::absolute(0x600008))),
            Some(VarRef::Global(0x600008))
        );
        assert_eq!(
            VarRef::from_operand(&Operand::mem(MemRef::base_index(Reg::R1, Reg::R2, 8))),
            None
        );
        assert_eq!(VarRef::from_operand(&Operand::imm(3)), None);
    }
}
