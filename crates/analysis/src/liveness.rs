//! Block-level register liveness.
//!
//! Liveness is used for two purposes in Janus: determining which registers
//! are live into a loop (and therefore must be copied into each thread's
//! initial context, or treated as loop-carried values) and finding dead
//! registers the dynamic binary modifier may use as scratch space without
//! spilling.

use crate::cfg::{BlockId, FunctionCfg};
use janus_ir::Reg;
use std::collections::HashSet;

/// Live-in and live-out register sets per basic block.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for a function with the standard backwards data-flow
    /// iteration.
    #[must_use]
    pub fn compute(func: &FunctionCfg) -> Liveness {
        let n = func.blocks.len();
        // Per-block use/def sets.
        let mut uses: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        for (i, b) in func.blocks.iter().enumerate() {
            for d in &b.insts {
                for r in d.inst.reads() {
                    if !defs[i].contains(&r) {
                        uses[i].insert(r);
                    }
                }
                for r in d.inst.writes() {
                    defs[i].insert(r);
                }
            }
        }
        let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = HashSet::new();
                for &s in &func.blocks[i].succs {
                    out.extend(live_in[s].iter().copied());
                }
                let mut inn: HashSet<Reg> = uses[i].clone();
                for r in &out {
                    if !defs[i].contains(r) {
                        inn.insert(*r);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `block`.
    #[must_use]
    pub fn live_in(&self, block: BlockId) -> &HashSet<Reg> {
        &self.live_in[block]
    }

    /// Registers live on exit from `block`.
    #[must_use]
    pub fn live_out(&self, block: BlockId) -> &HashSet<Reg> {
        &self.live_out[block]
    }

    /// General-purpose registers that are dead on entry to `block`
    /// (candidates for scratch use by the dynamic modifier).
    #[must_use]
    pub fn dead_gprs_at(&self, block: BlockId) -> Vec<Reg> {
        Reg::all_gprs()
            .filter(|r| !self.live_in[block].contains(r) && *r != Reg::SP && *r != Reg::FP)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover_functions;
    use janus_ir::{AluOp, AsmBuilder, Cond, Inst, Operand};

    #[test]
    fn loop_counter_is_live_into_the_loop() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        asm.push(Inst::mov(Operand::reg(Reg::R0), Operand::imm(0)));
        asm.label("loop");
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R1),
            Operand::reg(Reg::R0),
        ));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R0),
            Operand::imm(1),
        ));
        asm.push(Inst::cmp(Operand::reg(Reg::R0), Operand::imm(10)));
        asm.push_branch(Cond::Lt, "loop");
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let f = &recover_functions(&bin).unwrap()[0];
        let live = Liveness::compute(f);
        // The loop block is the one ending with the conditional branch.
        let loop_block = f
            .blocks
            .iter()
            .find(|b| matches!(b.terminator().map(|d| &d.inst), Some(Inst::Jcc { .. })))
            .unwrap();
        assert!(live.live_in(loop_block.id).contains(&Reg::R0));
        assert!(live.live_in(loop_block.id).contains(&Reg::R1));
        // A register never mentioned is dead everywhere.
        assert!(live.dead_gprs_at(loop_block.id).contains(&Reg::R9));
        assert!(!live.dead_gprs_at(loop_block.id).contains(&Reg::R0));
    }

    #[test]
    fn defs_kill_liveness() {
        let mut asm = AsmBuilder::new();
        asm.function("main");
        // R2 is written before being read: not live-in to the entry block.
        asm.push(Inst::mov(Operand::reg(Reg::R2), Operand::imm(5)));
        asm.push(Inst::alu(
            AluOp::Add,
            Operand::reg(Reg::R2),
            Operand::imm(1),
        ));
        asm.push(Inst::Halt);
        let bin = asm.finish_binary("main").unwrap();
        let f = &recover_functions(&bin).unwrap()[0];
        let live = Liveness::compute(f);
        assert!(!live.live_in(0).contains(&Reg::R2));
        assert!(live.live_out(0).is_empty());
    }
}
