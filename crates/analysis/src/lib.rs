//! # janus-analysis — the static binary analyser
//!
//! This crate is the Janus reproduction's equivalent of the paper's custom
//! Capstone-based static analyser (section II-D): it consumes a *stripped*
//! [`janus_ir::JBinary`], recovers functions, control-flow graphs, dominators
//! and natural loops, recognises induction variables and symbolic memory
//! access patterns, performs alias/dependence analysis and classifies every
//! loop into the paper's five categories:
//!
//! * **Type A — static DOALL**: no cross-iteration dependences except
//!   induction and add/sub reductions.
//! * **Type B — static dependence**: a cross-iteration dependence was proved.
//! * **Type C — dynamic DOALL**: the induction variable is known but some
//!   accesses cannot be disambiguated statically (pointer-based array bases,
//!   shared-library calls); runtime checks or speculation are required.
//! * **Type D — dynamic dependence**: profiling observed an actual
//!   cross-iteration dependence.
//! * **Incompatible**: system calls, indirect control flow, or an
//!   unrecognisable induction variable.
//!
//! The entry point is [`analyze`], which returns a [`BinaryAnalysis`]
//! containing a [`LoopInfo`] for every natural loop discovered.
//!
//! # Example
//!
//! ```
//! use janus_compile::{ast, Compiler};
//! use janus_analysis::{analyze, LoopCategory};
//!
//! let program = ast::Program::builder("p")
//!     .global_f64("a", 64)
//!     .global_f64("b", 64)
//!     .function(ast::Function::new("main").local("i", ast::Ty::I64).body(vec![
//!         ast::Stmt::simple_for(
//!             "i",
//!             ast::Expr::const_i(0),
//!             ast::Expr::const_i(64),
//!             vec![ast::Stmt::assign(
//!                 ast::LValue::store("b", ast::Expr::var("i")),
//!                 ast::Expr::load("a", ast::Expr::var("i")),
//!             )],
//!         ),
//!     ]))
//!     .build();
//! let binary = Compiler::new().compile(&program).unwrap();
//! let analysis = analyze(&binary).unwrap();
//! assert!(analysis
//!     .loops
//!     .iter()
//!     .any(|l| l.category == LoopCategory::StaticDoall));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cfg;
pub mod classify;
pub mod depend;
pub mod dom;
pub mod induction;
pub mod liveness;
pub mod loops;
pub mod memory;

mod error;

pub use cfg::{BasicBlock, BlockId, FunctionCfg};
pub use classify::{LoopCategory, LoopInfo};
pub use depend::{BoundsCheckPair, Dependence, DependenceKind, Reduction};
pub use error::{AnalysisError, Result};
pub use induction::{InductionVar, LoopBound, VarRef};
pub use liveness::Liveness;
pub use loops::{LoopId, NaturalLoop};
pub use memory::{AccessPattern, AddressBase, MemAccess};

use janus_ir::JBinary;

/// The complete result of statically analysing one binary.
#[derive(Debug, Clone)]
pub struct BinaryAnalysis {
    /// Recovered functions, in discovery order (entry function first).
    pub functions: Vec<FunctionCfg>,
    /// Every natural loop discovered, across all functions.
    pub loops: Vec<LoopInfo>,
}

impl BinaryAnalysis {
    /// Loops belonging to the function with the given CFG index.
    pub fn loops_of_function(&self, func: usize) -> impl Iterator<Item = &LoopInfo> {
        self.loops.iter().filter(move |l| l.function == func)
    }

    /// The loop whose header has the given address, if any.
    #[must_use]
    pub fn loop_by_header(&self, header_addr: u64) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.header_addr == header_addr)
    }

    /// Counts loops per category (used by the Figure 6 reproduction).
    #[must_use]
    pub fn category_histogram(&self) -> [(LoopCategory, usize); 6] {
        let mut counts = [
            (LoopCategory::StaticDoall, 0),
            (LoopCategory::StaticDependence, 0),
            (LoopCategory::DynamicDoall, 0),
            (LoopCategory::DynamicDependence, 0),
            (LoopCategory::Speculative, 0),
            (LoopCategory::Incompatible, 0),
        ];
        for l in &self.loops {
            for (cat, n) in &mut counts {
                if *cat == l.category {
                    *n += 1;
                }
            }
        }
        counts
    }
}

// Analyses are cached content-addressed (keyed by `JBinary::content_digest`)
// and shared across serving worker threads; keep the whole artifact
// cheap-to-clone plain data so `Arc<BinaryAnalysis>` needs no locking.
const _: () = {
    const fn artifact<T: Clone + Send + Sync>() {}
    artifact::<BinaryAnalysis>();
    artifact::<LoopInfo>();
    artifact::<FunctionCfg>();
};

/// Statically analyses a binary: recovers CFGs, finds loops, recognises
/// induction variables and memory access patterns, and classifies every loop.
///
/// # Errors
///
/// Returns an error if the binary's text section cannot be decoded.
pub fn analyze(binary: &JBinary) -> Result<BinaryAnalysis> {
    let functions = cfg::recover_functions(binary)?;
    let mut loops = Vec::new();
    for (func_idx, func) in functions.iter().enumerate() {
        let doms = dom::Dominators::compute(func);
        let natural = loops::find_loops(func, &doms);
        let live = liveness::Liveness::compute(func);
        for nl in &natural {
            let info = classify::classify_loop(binary, func, func_idx, nl, &natural, &live);
            loops.push(info);
        }
    }
    // Assign stable ids.
    for (i, l) in loops.iter_mut().enumerate() {
        l.id = i;
    }
    Ok(BinaryAnalysis { functions, loops })
}
