//! Property-based tests for rewrite-schedule serialisation and indexing.

use janus_schedule::{RewriteRule, RewriteSchedule, RuleId, RULE_DATA_WORDS};
use proptest::prelude::*;

fn arb_rule_id() -> impl Strategy<Value = RuleId> {
    (0usize..RuleId::ALL.len()).prop_map(|i| RuleId::ALL[i])
}

fn arb_rule() -> impl Strategy<Value = RewriteRule> {
    (
        any::<u32>(),
        arb_rule_id(),
        proptest::array::uniform6(any::<i64>()),
    )
        .prop_map(|(addr, id, data)| {
            let mut rule = RewriteRule::new(u64::from(addr), id);
            for (i, d) in data.iter().enumerate().take(RULE_DATA_WORDS) {
                rule = rule.with_data(i, *d);
            }
            rule
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schedules_round_trip_through_bytes(
        name in "[ -~]{0,24}",
        threads in any::<u32>(),
        rules in proptest::collection::vec(arb_rule(), 0..64),
    ) {
        let mut schedule = RewriteSchedule::new(name);
        schedule.threads = threads;
        for r in &rules {
            schedule.push(*r);
        }
        let bytes = schedule.to_bytes();
        let back = RewriteSchedule::from_bytes(&bytes).expect("deserialises");
        prop_assert_eq!(back, schedule);
    }

    #[test]
    fn truncated_schedules_never_panic(
        rules in proptest::collection::vec(arb_rule(), 1..16),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut schedule = RewriteSchedule::new("t");
        for r in &rules {
            schedule.push(*r);
        }
        let bytes = schedule.to_bytes();
        let cut = cut.index(bytes.len());
        // Either an error or (for cuts beyond the rule array) a valid prefix;
        // never a panic.
        let _ = RewriteSchedule::from_bytes(&bytes[..cut]);
    }

    #[test]
    fn index_preserves_rule_order_and_membership(
        rules in proptest::collection::vec(arb_rule(), 0..64),
    ) {
        let mut schedule = RewriteSchedule::new("t");
        for r in &rules {
            schedule.push(*r);
        }
        let index = schedule.index();
        for r in &rules {
            let at = index.at(r.addr);
            prop_assert!(at.iter().any(|x| x == r));
            // Schedule order is preserved within one address.
            let expected: Vec<_> = schedule.rules_at(r.addr).copied().collect();
            prop_assert_eq!(at, expected.as_slice());
        }
        let total: usize = rules
            .iter()
            .map(|r| r.addr)
            .collect::<std::collections::HashSet<_>>()
            .len();
        prop_assert_eq!(index.len(), total);
    }
}
