//! # janus-schedule — rewrite rules and rewrite schedules
//!
//! The *rewrite schedule* is the architecture-independent interface between
//! the static analyser and the dynamic binary modifier (section II-A of the
//! paper): a header, a list of fixed-length *rewrite rules* (trigger address,
//! rule id, data words) and nothing else. The DBM indexes the rules by
//! address in a hash table and invokes the handler for each rule attached to
//! a basic block just before the block is placed in its code cache.
//!
//! This crate defines the rule identifiers of Figure 3, the fixed-length rule
//! record, the schedule container, its binary serialisation (whose size is
//! what Figure 10 measures) and the per-address index used by the DBM.
//!
//! # Example
//!
//! ```
//! use janus_schedule::{RewriteRule, RewriteSchedule, RuleId};
//!
//! let mut schedule = RewriteSchedule::new("demo");
//! schedule.push(RewriteRule::new(0x400100, RuleId::LoopInit).with_data(0, 7));
//! schedule.push(RewriteRule::new(0x400180, RuleId::LoopFinish).with_data(0, 7));
//! let bytes = schedule.to_bytes();
//! let reloaded = RewriteSchedule::from_bytes(&bytes).unwrap();
//! assert_eq!(reloaded.rules().len(), 2);
//! assert_eq!(reloaded.rules_at(0x400100).count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;

/// Version of the serialised schedule format produced by
/// [`RewriteSchedule::to_bytes`] and required by
/// [`RewriteSchedule::from_bytes`].
///
/// The constant exists so *other* serialisation layers can key their own
/// version headers on it: the persistent artifact store in `janus-serve`
/// embeds this value in every entry and treats a mismatch as "rebuild, do
/// not load" — bump it whenever the byte layout below changes and every
/// stale on-disk schedule is invalidated automatically instead of being
/// misparsed.
pub const SCHEDULE_FORMAT_VERSION: u32 = 1;

/// Number of 64-bit data words carried by every rewrite rule.
pub const RULE_DATA_WORDS: usize = 6;

/// Size in bytes of one serialised rewrite rule.
pub const RULE_SIZE: usize = 8 + 2 + 6 + RULE_DATA_WORDS * 8;

/// The rewrite-rule identifiers of the Janus system (Figure 3 of the paper),
/// covering statically-driven profiling (blue rules) and automatic
/// parallelisation (orange rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum RuleId {
    /// Start profiling a loop.
    ProfLoopStart = 0,
    /// Finish profiling a loop.
    ProfLoopFinish = 1,
    /// Start another loop iteration (profiling).
    ProfLoopIter = 2,
    /// Start profiling an external call within a profiled loop.
    ProfExcallStart = 3,
    /// Finish profiling an external call within a profiled loop.
    ProfExcallFinish = 4,
    /// Check for data dependences for a memory access (profiling).
    ProfMemAccess = 5,
    /// Schedule threads to jump to a code address.
    ThreadSchedule = 6,
    /// Send threads back to the thread pool.
    ThreadYield = 7,
    /// Initialise loop context for each thread.
    LoopInit = 8,
    /// Combine loop contexts from all threads.
    LoopFinish = 9,
    /// Update a loop bound for a thread.
    LoopUpdateBound = 10,
    /// Redirect a stack access to the main stack.
    MemMainStack = 11,
    /// Redirect a memory access to a private address.
    MemPrivatise = 12,
    /// Perform a bounds check on two array bounds.
    MemBoundsCheck = 13,
    /// Spill a set of registers to private storage.
    MemSpillReg = 14,
    /// Recover a set of registers from private storage.
    MemRecoverReg = 15,
    /// Start a software transaction.
    TxStart = 16,
    /// Validate and commit a software transaction.
    TxFinish = 17,
    /// Run the loop under Block-STM-style iteration-level speculation
    /// (multi-version memory, lazy validation, per-iteration rollback)
    /// instead of chunked DOALL execution.
    Speculate = 18,
}

impl RuleId {
    /// All rule identifiers in numeric order.
    pub const ALL: [RuleId; 19] = [
        RuleId::ProfLoopStart,
        RuleId::ProfLoopFinish,
        RuleId::ProfLoopIter,
        RuleId::ProfExcallStart,
        RuleId::ProfExcallFinish,
        RuleId::ProfMemAccess,
        RuleId::ThreadSchedule,
        RuleId::ThreadYield,
        RuleId::LoopInit,
        RuleId::LoopFinish,
        RuleId::LoopUpdateBound,
        RuleId::MemMainStack,
        RuleId::MemPrivatise,
        RuleId::MemBoundsCheck,
        RuleId::MemSpillReg,
        RuleId::MemRecoverReg,
        RuleId::TxStart,
        RuleId::TxFinish,
        RuleId::Speculate,
    ];

    /// Numeric encoding of the rule id.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a rule id.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<RuleId> {
        RuleId::ALL.get(v as usize).copied()
    }

    /// Returns `true` for the rules used only during profiling runs.
    #[must_use]
    pub fn is_profiling(self) -> bool {
        matches!(
            self,
            RuleId::ProfLoopStart
                | RuleId::ProfLoopFinish
                | RuleId::ProfLoopIter
                | RuleId::ProfExcallStart
                | RuleId::ProfExcallFinish
                | RuleId::ProfMemAccess
        )
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RuleId::ProfLoopStart => "PROF_LOOP_START",
            RuleId::ProfLoopFinish => "PROF_LOOP_FINISH",
            RuleId::ProfLoopIter => "PROF_LOOP_ITER",
            RuleId::ProfExcallStart => "PROF_EXCALL_START",
            RuleId::ProfExcallFinish => "PROF_EXCALL_FINISH",
            RuleId::ProfMemAccess => "PROF_MEM_ACCESS",
            RuleId::ThreadSchedule => "THREAD_SCHEDULE",
            RuleId::ThreadYield => "THREAD_YIELD",
            RuleId::LoopInit => "LOOP_INIT",
            RuleId::LoopFinish => "LOOP_FINISH",
            RuleId::LoopUpdateBound => "LOOP_UPDATE_BOUND",
            RuleId::MemMainStack => "MEM_MAIN_STACK",
            RuleId::MemPrivatise => "MEM_PRIVATISE",
            RuleId::MemBoundsCheck => "MEM_BOUNDS_CHECK",
            RuleId::MemSpillReg => "MEM_SPILL_REG",
            RuleId::MemRecoverReg => "MEM_RECOVER_REG",
            RuleId::TxStart => "TX_START",
            RuleId::TxFinish => "TX_FINISH",
            RuleId::Speculate => "SPECULATE",
        };
        f.write_str(name)
    }
}

/// A fixed-length rewrite rule: the address it is attached to, the
/// transformation to carry out and rule-specific data words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewriteRule {
    /// The application address (instruction or basic-block address) at which
    /// the rule triggers.
    pub addr: u64,
    /// The transformation to perform.
    pub id: RuleId,
    /// Rule-specific payload (register numbers, immediates, loop ids, array
    /// base descriptors, ...).
    pub data: [i64; RULE_DATA_WORDS],
}

impl RewriteRule {
    /// Creates a rule with zeroed data words.
    #[must_use]
    pub fn new(addr: u64, id: RuleId) -> RewriteRule {
        RewriteRule {
            addr,
            id,
            data: [0; RULE_DATA_WORDS],
        }
    }

    /// Sets data word `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= RULE_DATA_WORDS`.
    #[must_use]
    pub fn with_data(mut self, index: usize, value: i64) -> RewriteRule {
        self.data[index] = value;
        self
    }

    /// Data word 0, conventionally the loop id the rule belongs to.
    #[must_use]
    pub fn loop_id(&self) -> usize {
        self.data[0] as usize
    }
}

impl fmt::Display for RewriteRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {} {:?}", self.addr, self.id, self.data)
    }
}

/// Errors raised when deserialising a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The byte stream is not a valid schedule image.
    Malformed {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Malformed { reason } => {
                write!(f, "malformed rewrite schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A rewrite schedule: header information plus the ordered list of rules.
///
/// Rule order matters: where two or more rules refer to the same machine
/// instruction, the DBM applies them in schedule order (section II-A2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RewriteSchedule {
    /// Name of the executable this schedule belongs to.
    pub executable: String,
    /// Number of threads the schedule was generated for (0 = decided at
    /// runtime).
    pub threads: u32,
    rules: Vec<RewriteRule>,
}

impl RewriteSchedule {
    /// Creates an empty schedule for the named executable.
    #[must_use]
    pub fn new(executable: impl Into<String>) -> RewriteSchedule {
        RewriteSchedule {
            executable: executable.into(),
            threads: 0,
            rules: Vec::new(),
        }
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: RewriteRule) {
        self.rules.push(rule);
    }

    /// All rules in schedule order.
    #[must_use]
    pub fn rules(&self) -> &[RewriteRule] {
        &self.rules
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the schedule carries no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules attached to `addr`, in schedule order.
    pub fn rules_at(&self, addr: u64) -> impl Iterator<Item = &RewriteRule> {
        self.rules.iter().filter(move |r| r.addr == addr)
    }

    /// Rules with the given id.
    pub fn rules_with_id(&self, id: RuleId) -> impl Iterator<Item = &RewriteRule> + '_ {
        self.rules.iter().filter(move |r| r.id == id)
    }

    /// Builds the per-address index the DBM uses for O(1) lookup while
    /// translating basic blocks.
    #[must_use]
    pub fn index(&self) -> RuleIndex {
        let mut map: HashMap<u64, Vec<RewriteRule>> = HashMap::new();
        for r in &self.rules {
            map.entry(r.addr).or_default().push(*r);
        }
        RuleIndex { map }
    }

    /// Serialised size in bytes (the quantity reported in Figure 10).
    #[must_use]
    pub fn byte_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }

    /// Content digest of the schedule: a 64-bit FNV-1a hash over the exact
    /// serialised image ([`RewriteSchedule::to_bytes`]). Serving layers key
    /// cached artifacts by the guest binary's digest; this companion digest
    /// identifies the derived schedule itself, so a cache entry can be
    /// audited (binary digest in, schedule digest out) without comparing
    /// rule lists.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        // Same FNV-1a family as `janus_ir::digest` — kept inline because
        // janus-schedule deliberately has no dependencies.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Serialises the schedule.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.rules.len() * RULE_SIZE);
        out.extend_from_slice(b"JRWS");
        out.extend_from_slice(&SCHEDULE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.executable.len() as u32).to_le_bytes());
        out.extend_from_slice(self.executable.as_bytes());
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.extend_from_slice(&(self.rules.len() as u32).to_le_bytes());
        for r in &self.rules {
            out.extend_from_slice(&r.addr.to_le_bytes());
            out.extend_from_slice(&r.id.as_u16().to_le_bytes());
            out.extend_from_slice(&[0u8; 6]);
            for d in &r.data {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out
    }

    /// Deserialises a schedule.
    ///
    /// # Errors
    ///
    /// Returns an error if the byte stream is truncated or malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<RewriteSchedule, ScheduleError> {
        let err = |reason: &str| ScheduleError::Malformed {
            reason: reason.to_string(),
        };
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ScheduleError> {
            if *pos + n > bytes.len() {
                return Err(ScheduleError::Malformed {
                    reason: "unexpected end of schedule".to_string(),
                });
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != b"JRWS" {
            return Err(err("bad magic"));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if version != SCHEDULE_FORMAT_VERSION {
            return Err(ScheduleError::Malformed {
                reason: format!(
                    "unsupported schedule format version {version} (this build reads {SCHEDULE_FORMAT_VERSION})"
                ),
            });
        }
        let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let executable = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| err("executable name is not UTF-8"))?;
        let threads = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut rules = Vec::with_capacity(count);
        for _ in 0..count {
            let addr = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let id_raw = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
            let id = RuleId::from_u16(id_raw).ok_or_else(|| err("unknown rule id"))?;
            let _pad = take(&mut pos, 6)?;
            let mut data = [0i64; RULE_DATA_WORDS];
            for d in &mut data {
                *d = i64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            }
            rules.push(RewriteRule { addr, id, data });
        }
        Ok(RewriteSchedule {
            executable,
            threads,
            rules,
        })
    }
}

/// A hash index from application address to the rules attached to it.
#[derive(Debug, Clone, Default)]
pub struct RuleIndex {
    map: HashMap<u64, Vec<RewriteRule>>,
}

impl RuleIndex {
    /// Rules attached to `addr` (empty slice if none).
    #[must_use]
    pub fn at(&self, addr: u64) -> &[RewriteRule] {
        self.map.get(&addr).map_or(&[], Vec::as_slice)
    }

    /// Returns `true` if any rule is attached to `addr`.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        self.map.contains_key(&addr)
    }

    /// Number of distinct addresses with rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// Schedules (and their per-address indices) are cached content-addressed and
// shared across serving worker threads; keep them cheap-to-clone plain data.
const _: () = {
    const fn artifact<T: Clone + Send + Sync>() {}
    artifact::<RewriteSchedule>();
    artifact::<RuleIndex>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_id_round_trip() {
        for id in RuleId::ALL {
            assert_eq!(RuleId::from_u16(id.as_u16()), Some(id));
        }
        assert_eq!(RuleId::from_u16(999), None);
    }

    #[test]
    fn profiling_rules_are_flagged() {
        assert!(RuleId::ProfMemAccess.is_profiling());
        assert!(!RuleId::LoopInit.is_profiling());
        assert_eq!(
            RuleId::ALL.iter().filter(|r| r.is_profiling()).count(),
            6,
            "six profiling rules as in Figure 3"
        );
        assert_eq!(RuleId::ALL.len(), 19, "Figure 3's 18 rules plus SPECULATE");
        assert!(!RuleId::Speculate.is_profiling());
    }

    #[test]
    fn schedule_round_trip() {
        let mut s = RewriteSchedule::new("470.lbm");
        s.threads = 8;
        for i in 0..10 {
            s.push(
                RewriteRule::new(0x400000 + i * 0x20, RuleId::ALL[(i % 18) as usize])
                    .with_data(0, i as i64)
                    .with_data(5, -7),
            );
        }
        let bytes = s.to_bytes();
        let back = RewriteSchedule::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.byte_size(), bytes.len() as u64);
    }

    #[test]
    fn content_digest_tracks_rule_content() {
        let mut a = RewriteSchedule::new("470.lbm");
        a.push(RewriteRule::new(0x400100, RuleId::LoopInit).with_data(0, 7));
        let mut b = RewriteSchedule::new("470.lbm");
        b.push(RewriteRule::new(0x400100, RuleId::LoopInit).with_data(0, 7));
        assert_eq!(a.content_digest(), b.content_digest());
        b.push(RewriteRule::new(0x400180, RuleId::LoopFinish).with_data(0, 7));
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        assert!(RewriteSchedule::from_bytes(b"oops").is_err());
        let mut bytes = RewriteSchedule::new("x").to_bytes();
        bytes[0] = b'Z';
        assert!(RewriteSchedule::from_bytes(&bytes).is_err());
        // A future (or corrupted) format version is rejected, not misparsed.
        let mut bytes = RewriteSchedule::new("x").to_bytes();
        bytes[4..8].copy_from_slice(&(SCHEDULE_FORMAT_VERSION + 1).to_le_bytes());
        let err = RewriteSchedule::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("format version"));
        let s = {
            let mut s = RewriteSchedule::new("x");
            s.push(RewriteRule::new(0, RuleId::LoopInit));
            s
        };
        let bytes = s.to_bytes();
        assert!(RewriteSchedule::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn index_groups_rules_by_address() {
        let mut s = RewriteSchedule::new("x");
        s.push(RewriteRule::new(0x400100, RuleId::MemMainStack).with_data(1, 14));
        s.push(RewriteRule::new(0x400100, RuleId::MemPrivatise).with_data(1, 15));
        s.push(RewriteRule::new(0x400200, RuleId::LoopUpdateBound));
        let idx = s.index();
        assert_eq!(idx.at(0x400100).len(), 2);
        assert_eq!(
            idx.at(0x400100)[0].id,
            RuleId::MemMainStack,
            "order preserved"
        );
        assert_eq!(idx.at(0x400300).len(), 0);
        assert!(idx.contains(0x400200));
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn rules_with_id_and_at_filter_correctly() {
        let mut s = RewriteSchedule::new("x");
        s.push(RewriteRule::new(1, RuleId::LoopInit).with_data(0, 3));
        s.push(RewriteRule::new(2, RuleId::LoopFinish).with_data(0, 3));
        s.push(RewriteRule::new(3, RuleId::LoopInit).with_data(0, 4));
        assert_eq!(s.rules_with_id(RuleId::LoopInit).count(), 2);
        assert_eq!(s.rules_at(2).count(), 1);
        assert_eq!(s.rules()[0].loop_id(), 3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_formats_are_readable() {
        let r = RewriteRule::new(0x400900, RuleId::MemBoundsCheck).with_data(0, 2);
        let text = r.to_string();
        assert!(text.contains("0x400900"));
        assert!(text.contains("MEM_BOUNDS_CHECK"));
    }
}
