//! The rewrite-rule-driven execution engine: rule decoding, parallel-loop
//! *planning* (chunking, context forking, bounds checks) and the merge of
//! chunk results back into the main thread. The *execution* of planned
//! chunks lives behind [`crate::ExecutionBackend`] in `backend.rs`.

use crate::backend::{BlockAccounting, ChunkContext, ChunkPlan, ChunkSideEffects, CodeCache};
use crate::stm::TxView;
use crate::tuner::{TuneDecision, Tuner};
use crate::{DbmConfig, DbmError, DbmStats, Result};
use janus_ir::{Inst, Operand, Reg, SyscallNum, INST_SIZE, STACK_SIZE};
use janus_obs::Recorder;
use janus_schedule::{RewriteSchedule, RuleId, RuleIndex};
use janus_vm::{exec_inst, Cpu, Effect, FlatMemory, GuestMemory, Process, ResolvedPlt};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// How a scalar variable location is encoded inside rewrite-rule data words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarSpec {
    /// An architectural register (by raw number).
    Reg(u8),
    /// A frame-pointer-relative stack slot.
    Stack(i64),
}

impl VarSpec {
    /// Encodes into `(kind, value)` data words.
    #[must_use]
    pub fn encode(self) -> (i64, i64) {
        match self {
            VarSpec::Reg(r) => (0, i64::from(r)),
            VarSpec::Stack(off) => (1, off),
        }
    }

    /// Decodes from `(kind, value)` data words.
    #[must_use]
    pub fn decode(kind: i64, value: i64) -> Option<VarSpec> {
        match kind {
            0 => Some(VarSpec::Reg(value as u8)),
            1 => Some(VarSpec::Stack(value)),
            _ => None,
        }
    }

    fn read(self, cpu: &Cpu, mem: &mut FlatMemory) -> i64 {
        match self {
            VarSpec::Reg(r) => {
                let reg = Reg::from_raw(r).expect("valid register in rule");
                if reg.is_gpr() {
                    cpu.read_gpr(reg)
                } else {
                    cpu.read_f64(reg).to_bits() as i64
                }
            }
            VarSpec::Stack(off) => mem.read_i64((cpu.read_gpr(Reg::FP) + off) as u64),
        }
    }

    fn write(self, cpu: &mut Cpu, mem: &mut FlatMemory, value: i64) {
        match self {
            VarSpec::Reg(r) => {
                let reg = Reg::from_raw(r).expect("valid register in rule");
                if reg.is_gpr() {
                    cpu.write_gpr(reg, value);
                } else {
                    cpu.write_f64(reg, f64::from_bits(value as u64));
                }
            }
            VarSpec::Stack(off) => mem.write_i64((cpu.read_gpr(Reg::FP) + off) as u64, value),
        }
    }
}

/// One side of a runtime bounds check, as encoded in `MEM_BOUNDS_CHECK` data
/// words: either a global array base or a register-held base, plus the byte
/// stride per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideSpec {
    /// `None` for a statically known base, `Some(reg)` for a register base.
    pub reg: Option<u8>,
    /// Absolute base (global) or byte offset from the register base.
    pub base_or_offset: i64,
    /// Byte stride per loop iteration.
    pub stride: i64,
}

impl SideSpec {
    /// Encodes into two data words.
    #[must_use]
    pub fn encode(self) -> (i64, i64) {
        let w1 = match self.reg {
            None => self.stride << 16,
            Some(r) => 1 | (i64::from(r) << 8) | (self.stride << 16),
        };
        (w1, self.base_or_offset)
    }

    /// Decodes from two data words.
    #[must_use]
    pub fn decode(w1: i64, w2: i64) -> SideSpec {
        let is_reg = (w1 & 1) == 1;
        let reg = if is_reg {
            Some(((w1 >> 8) & 0xff) as u8)
        } else {
            None
        };
        SideSpec {
            reg,
            base_or_offset: w2,
            stride: w1 >> 16,
        }
    }

    /// The address range `[lo, hi)` touched over `iterations` iterations,
    /// evaluated against the current register state.
    fn range(&self, cpu: &Cpu, iterations: i64) -> (i64, i64) {
        let start = match self.reg {
            None => self.base_or_offset,
            Some(r) => {
                let reg = Reg::from_raw(r).expect("valid register in rule");
                cpu.read_gpr(reg) + self.base_or_offset
            }
        };
        let span = self.stride * (iterations - 1).max(0);
        let (lo, hi) = if span >= 0 {
            (start, start + span)
        } else {
            (start + span, start)
        };
        (lo, hi + 8)
    }
}

/// Per-loop runtime information derived from the rewrite schedule.
#[derive(Debug, Clone, Default)]
pub(crate) struct LoopRt {
    pub(crate) header: u64,
    pub(crate) induction: Option<VarSpec>,
    pub(crate) step: i64,
    pub(crate) bound_cmp_addr: u64,
    pub(crate) continue_cond: i64,
    pub(crate) finish_addrs: HashSet<u64>,
    pub(crate) reductions: Vec<(VarSpec, i64 /*op*/, bool /*float*/)>,
    pub(crate) bounds_pairs: Vec<(SideSpec, SideSpec)>,
    pub(crate) tx_calls: HashSet<u64>,
    /// `SPECULATE`: run invocations of this loop under the iteration-level
    /// speculation engine instead of chunked DOALL execution.
    pub(crate) speculative: bool,
}

/// The result of running a binary under the dynamic binary modifier.
#[derive(Debug, Clone)]
pub struct DbmRunResult {
    /// Guest exit code.
    pub exit_code: i64,
    /// Total virtual execution time in cycles.
    pub cycles: u64,
    /// Detailed statistics.
    pub stats: DbmStats,
    /// Integers written by the guest.
    pub output_ints: Vec<i64>,
    /// Floats written by the guest.
    pub output_floats: Vec<f64>,
    /// Wall-clock nanoseconds of the whole run (dispatch loop included).
    /// Unlike `cycles`, this depends on the host machine and is only
    /// meaningful for comparing backends on the same host.
    pub wall_nanos: u64,
    /// Digest of the final guest memory image
    /// ([`FlatMemory::image_digest`]). Equal across execution backends for
    /// the same program and input — the cross-backend equivalence anchor.
    pub memory_digest: u64,
}

impl DbmRunResult {
    /// Speedup relative to a native execution that took `native_cycles`.
    #[must_use]
    pub fn speedup_vs(&self, native_cycles: u64) -> f64 {
        native_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// The immutable, shareable half of a DBM: the loaded process, the rewrite
/// schedule decoded into its per-address index and per-loop runtime records,
/// and the baseline configuration.
///
/// Decoding a schedule and loading a process is per-*binary* work; executing
/// a run is per-*invocation* work. [`PreparedDbm`] holds the former behind an
/// [`Arc`] so a serving layer can prepare a binary once, cache the result by
/// content digest and drive any number of concurrent
/// [`PreparedDbm::execute`] calls from worker threads — each run gets fresh
/// guest memory, registers and statistics, so runs never observe each other.
#[derive(Debug, Clone)]
pub struct PreparedDbm {
    parts: Arc<PreparedParts>,
}

/// What `PreparedDbm` shares: everything `Dbm::run` only reads.
#[derive(Debug)]
struct PreparedParts {
    process: Process,
    index: RuleIndex,
    loops: HashMap<usize, LoopRt>,
    config: DbmConfig,
}

impl PreparedDbm {
    /// Prepares `process` for execution under `schedule`: decodes the
    /// schedule's loop rules into runtime records and builds the per-address
    /// rule index. `config` is the baseline configuration runs inherit
    /// (override it per run with [`PreparedDbm::execute_with`]).
    #[must_use]
    pub fn new(process: Process, schedule: &RewriteSchedule, config: DbmConfig) -> PreparedDbm {
        let mut loops: HashMap<usize, LoopRt> = HashMap::new();
        for rule in schedule.rules() {
            let entry = loops.entry(rule.loop_id()).or_default();
            match rule.id {
                RuleId::LoopInit => {
                    entry.header = rule.addr;
                    entry.induction = VarSpec::decode(rule.data[1], rule.data[2]);
                    entry.step = rule.data[3];
                    entry.bound_cmp_addr = rule.data[4] as u64;
                    entry.continue_cond = rule.data[5];
                }
                RuleId::LoopFinish | RuleId::ThreadYield => {
                    entry.finish_addrs.insert(rule.addr);
                }
                RuleId::MemPrivatise => {
                    if let Some(var) = VarSpec::decode(rule.data[1], rule.data[2]) {
                        entry
                            .reductions
                            .push((var, rule.data[3], rule.data[4] != 0));
                    }
                }
                RuleId::MemBoundsCheck => {
                    entry.bounds_pairs.push((
                        SideSpec::decode(rule.data[1], rule.data[2]),
                        SideSpec::decode(rule.data[3], rule.data[4]),
                    ));
                }
                RuleId::TxStart => {
                    entry.tx_calls.insert(rule.addr);
                }
                RuleId::Speculate => {
                    entry.speculative = true;
                }
                _ => {}
            }
        }
        // Drop loop entries without a LOOP_INIT rule (e.g. profiling-only
        // schedules) — they cannot drive parallelisation.
        loops.retain(|_, l| l.header != 0 && l.induction.is_some());
        PreparedDbm {
            parts: Arc::new(PreparedParts {
                process,
                index: schedule.index(),
                loops,
                config,
            }),
        }
    }

    /// The baseline configuration runs inherit.
    #[must_use]
    pub fn config(&self) -> &DbmConfig {
        &self.parts.config
    }

    /// Number of loops the schedule asked the DBM to parallelise.
    #[must_use]
    pub fn num_parallel_loops(&self) -> usize {
        self.parts.loops.len()
    }

    /// Runs the prepared binary to completion on `input` with the baseline
    /// configuration. Each call is an independent run over fresh guest
    /// state; `&self` is only read, so calls may race from many threads.
    ///
    /// # Errors
    ///
    /// Returns an error if guest execution faults or the cycle limit is
    /// exceeded.
    pub fn execute(&self, input: &[i64]) -> Result<DbmRunResult> {
        self.execute_with(input, self.parts.config)
    }

    /// [`PreparedDbm::execute`] with a per-run configuration override
    /// (serving layers use this for per-job backend and thread-count
    /// choices; the decoded schedule is config-independent).
    ///
    /// # Errors
    ///
    /// Returns an error if guest execution faults or the cycle limit is
    /// exceeded.
    pub fn execute_with(&self, input: &[i64], config: DbmConfig) -> Result<DbmRunResult> {
        self.execute_traced(input, config, &Recorder::default())
    }

    /// [`PreparedDbm::execute_with`] with a flight recorder attached: the
    /// execution backends emit per-chunk run/merge spans and the racing
    /// speculation pool emits per-incarnation events to it. `DbmConfig`
    /// stays `Copy`, so the recorder rides alongside the config rather than
    /// inside it. Passing the null recorder is exactly `execute_with`.
    ///
    /// # Errors
    ///
    /// Returns an error if guest execution faults or the cycle limit is
    /// exceeded.
    pub fn execute_traced(
        &self,
        input: &[i64],
        config: DbmConfig,
        recorder: &Recorder,
    ) -> Result<DbmRunResult> {
        let mut dbm = Dbm::from_prepared_with_config(self.clone(), config);
        dbm.set_recorder(recorder.clone());
        dbm.set_input(input);
        dbm.run()
    }
}

/// The dynamic binary modifier: executes one process under the control of a
/// rewrite schedule.
#[derive(Debug)]
pub struct Dbm {
    prepared: PreparedDbm,
    config: DbmConfig,
    recorder: Recorder,

    mem: FlatMemory,
    main: Cpu,
    stats: DbmStats,
    cache: CodeCache,
    active_sequential: HashSet<usize>,
    heap_brk: u64,
    output_ints: Vec<i64>,
    output_floats: Vec<f64>,
    input: VecDeque<i64>,
    exit_code: i64,

    /// Adaptive-execution state, present iff [`DbmConfig::adaptive`] is on.
    tuner: Option<Tuner>,
    /// Loops the tuner sent down the sequential path whose wall time is
    /// still being measured: completed (and fed back) when the main thread
    /// reaches the loop's `LOOP_FINISH` rule.
    pending_seq: HashMap<usize, PendingSequential>,
    /// Pace-calibration markers: the main thread's sequential cycle count,
    /// parallel-region wall total and wall-clock instant at the last
    /// calibration point. The stretch between two parallel-candidate loop
    /// headers is sequential dispatch plus parallel regions; subtracting
    /// the latter yields wall-per-sequential-cycle samples for the tuner.
    cal: Option<PaceMarkers>,
}

/// A tuner-decided sequential invocation in flight (see
/// [`Dbm::try_parallel_loop`]).
#[derive(Debug)]
struct PendingSequential {
    started: Instant,
    iterations: u64,
    predicted_nanos: Option<u64>,
    probe: bool,
}

/// Snapshot markers for pace calibration.
#[derive(Debug, Clone, Copy)]
struct PaceMarkers {
    wall: Instant,
    seq_cycles: u64,
    parallel_wall: u64,
}

/// Minimum sequential cycles between pace samples — stretches shorter than
/// this are dominated by timer noise and dispatch-loop bookkeeping.
const PACE_MIN_CYCLES: u64 = 10_000;

impl Dbm {
    /// Creates a DBM for `process`, controlled by `schedule`.
    #[must_use]
    pub fn new(process: Process, schedule: &RewriteSchedule, config: DbmConfig) -> Dbm {
        Dbm::from_prepared(PreparedDbm::new(process, schedule, config))
    }

    /// Creates a DBM for one run of a prepared binary.
    #[must_use]
    pub fn from_prepared(prepared: PreparedDbm) -> Dbm {
        let config = prepared.parts.config;
        Dbm::from_prepared_with_config(prepared, config)
    }

    fn from_prepared_with_config(prepared: PreparedDbm, config: DbmConfig) -> Dbm {
        let process = &prepared.parts.process;
        let mem = process.initial_memory();
        let mut main = Cpu::new();
        main.pc = process.entry();
        main.set_sp(process.initial_sp());
        let heap_brk = process.heap_base();
        Dbm {
            prepared,
            config,
            recorder: Recorder::default(),
            mem,
            main,
            stats: DbmStats::default(),
            cache: CodeCache::new(),
            active_sequential: HashSet::new(),
            heap_brk,
            output_ints: Vec::new(),
            output_floats: Vec::new(),
            input: VecDeque::new(),
            exit_code: 0,
            tuner: config.adaptive.then(Tuner::new),
            pending_seq: HashMap::new(),
            cal: None,
        }
    }

    /// Provides simulated standard input.
    pub fn set_input(&mut self, input: &[i64]) {
        self.input = input.iter().copied().collect();
    }

    /// Attaches a flight recorder for this run: the execution backends emit
    /// per-chunk run/merge spans and speculative-pool incarnation events to
    /// it. The default is the null recorder (no events, one branch per
    /// emission site).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Number of loops the schedule asked the DBM to parallelise.
    #[must_use]
    pub fn num_parallel_loops(&self) -> usize {
        self.prepared.num_parallel_loops()
    }

    /// Runs the program to completion under DBM control.
    ///
    /// # Errors
    ///
    /// Returns an error if guest execution faults or the cycle limit is
    /// exceeded.
    pub fn run(self) -> Result<DbmRunResult> {
        let backend = self.config.backend;
        let result = self.run_inner();
        match &result {
            Ok(res) => crate::meter::record_run(backend, &res.stats, res.cycles, res.wall_nanos),
            Err(_) => crate::meter::record_run_failure(backend),
        }
        result
    }

    fn run_inner(mut self) -> Result<DbmRunResult> {
        let wall_start = Instant::now();
        loop {
            let total = self.main.cycles;
            if total > self.config.cycle_limit {
                return Err(DbmError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            let pc = self.main.pc;

            // Rewrite-rule interpretation for the main thread: LOOP_INIT
            // triggers the parallel loop runtime, LOOP_FINISH clears any
            // sequential-fallback marker.
            if self.prepared.parts.index.contains(pc) {
                for rule in self.prepared.parts.index.at(pc).to_vec() {
                    match rule.id {
                        RuleId::LoopFinish => {
                            let loop_id = rule.loop_id();
                            self.active_sequential.remove(&loop_id);
                            self.complete_sequential_sample(loop_id);
                        }
                        RuleId::LoopInit => {
                            let loop_id = rule.loop_id();
                            if !self.active_sequential.contains(&loop_id)
                                && self.prepared.parts.loops.contains_key(&loop_id)
                            {
                                if self.try_parallel_loop(loop_id)? {
                                    // Parallel execution advanced main.pc past
                                    // the loop; restart the dispatch loop.
                                    continue;
                                }
                                self.active_sequential.insert(loop_id);
                            }
                        }
                        _ => {}
                    }
                }
                // The loop body may have changed `main.pc`; refresh.
                if self.main.pc != pc {
                    continue;
                }
            }

            self.account_block(pc);
            let inst = self.prepared.parts.process.inst_at(pc)?.clone();
            let next_pc = pc + INST_SIZE as u64;
            let seq_before = self.main.cycles;
            let effect = exec_inst(&mut self.main, &mut self.mem, &inst, next_pc)?;
            self.stats.breakdown.sequential += self.main.cycles - seq_before;
            self.charge_indirect(&inst);
            match effect {
                Effect::Continue => self.main.pc = next_pc,
                Effect::Jump(t) => self.main.pc = t,
                Effect::Halt => break,
                Effect::External { plt } => self.handle_external_main(plt)?,
                Effect::Syscall { num } => {
                    if self.handle_syscall(num)? {
                        break;
                    }
                    self.main.pc = next_pc;
                }
            }
        }
        self.stats.retired += self.main.retired;
        let cycles = self.stats.breakdown.total();
        Ok(DbmRunResult {
            exit_code: self.exit_code,
            cycles,
            stats: self.stats,
            output_ints: self.output_ints,
            output_floats: self.output_floats,
            wall_nanos: wall_start.elapsed().as_nanos() as u64,
            memory_digest: self.mem.image_digest(),
        })
    }

    /// Charges code-cache costs when a block at `pc` starts executing on the
    /// main thread. (Chunk execution does the same through its
    /// [`ChunkSideEffects`].)
    fn account_block(&mut self, pc: u64) {
        // A "block" is approximated by its entry address: the first time it is
        // reached it must be translated; until it is hot it pays a dispatch
        // penalty on every execution.
        let (overhead, newly_translated) = self.cache.account_block(pc, &self.config);
        if newly_translated {
            self.stats.blocks_translated += 1;
        }
        self.stats.block_executions += 1;
        self.stats.breakdown.translation += overhead;
    }

    fn charge_indirect(&mut self, inst: &Inst) {
        if needs_indirect_lookup(inst) {
            self.stats.breakdown.translation += self.config.indirect_lookup_cost;
        }
    }

    fn handle_external_main(&mut self, plt: u32) -> Result<()> {
        match self.prepared.parts.process.resolve_plt(plt)?.clone() {
            ResolvedPlt::Guest { addr, .. } => {
                self.main.pc = addr;
                Ok(())
            }
            ResolvedPlt::Native { name } => {
                match name.as_str() {
                    "print_i64" => self.output_ints.push(self.main.read_gpr(Reg::R0)),
                    "print_f64" => self.output_floats.push(self.main.read_f64(Reg::V0)),
                    // Compiler-parallelised binaries are not run under Janus;
                    // treat the runtime call as a no-op chunk executor.
                    "par_for" => {
                        return Err(DbmError::BadRule {
                            reason: "par_for runtime calls are not supported under the DBM"
                                .to_string(),
                        })
                    }
                    other => {
                        return Err(DbmError::Vm(janus_vm::VmError::UnknownExternal {
                            name: other.to_string(),
                        }))
                    }
                }
                let ret = janus_vm::exec::pop_value(&mut self.main, &mut self.mem) as u64;
                self.main.pc = ret;
                Ok(())
            }
        }
    }

    fn handle_syscall(&mut self, num: u32) -> Result<bool> {
        let call = SyscallNum::from_u32(num)
            .ok_or(janus_vm::VmError::UnknownSyscall { num })
            .map_err(DbmError::Vm)?;
        match call {
            SyscallNum::Exit => {
                self.exit_code = self.main.read_gpr(Reg::R0);
                Ok(true)
            }
            SyscallNum::WriteInt => {
                self.output_ints.push(self.main.read_gpr(Reg::R1));
                Ok(false)
            }
            SyscallNum::WriteFloat => {
                self.output_floats.push(self.main.read_f64(Reg::V0));
                Ok(false)
            }
            SyscallNum::Sbrk => {
                let size = self.main.read_gpr(Reg::R1).max(0) as u64;
                let old = self.heap_brk;
                self.heap_brk += (size + 7) & !7;
                self.main.write_gpr(Reg::R0, old as i64);
                Ok(false)
            }
            SyscallNum::Clock => {
                let c = self.stats.breakdown.total();
                self.main.write_gpr(Reg::R0, c as i64);
                Ok(false)
            }
            SyscallNum::ReadInt => {
                let v = self.input.pop_front().unwrap_or(0);
                self.main.write_gpr(Reg::R0, v);
                Ok(false)
            }
        }
    }

    /// Computes the number of remaining iterations given start, bound, step
    /// and the continue condition.
    fn iteration_count(start: i64, end: i64, step: i64, cond: i64) -> i64 {
        // cond encoding matches janus_ir::Cond discriminants used by rulegen:
        // 2 = Lt, 3 = Le, 4 = Gt, 5 = Ge, 1 = Ne (others treated like Lt).
        let (span, step_abs) = if step > 0 {
            let end = if cond == 3 { end + 1 } else { end };
            (end - start, step)
        } else {
            let end = if cond == 5 { end - 1 } else { end };
            (start - end, -step)
        };
        if span <= 0 || step_abs == 0 {
            0
        } else {
            (span + step_abs - 1) / step_abs
        }
    }

    /// Feeds one pace-calibration sample to the tuner: wall time per
    /// modelled sequential cycle, measured over the stretch since the last
    /// calibration point with parallel-region wall time subtracted. Called
    /// at every parallel-candidate loop header (adaptive runs only).
    fn calibrate_pace(&mut self) {
        let Some(tuner) = self.tuner.as_mut() else {
            return;
        };
        let now = Instant::now();
        let Some(mark) = self.cal else {
            self.cal = Some(PaceMarkers {
                wall: now,
                seq_cycles: self.main.cycles,
                parallel_wall: self.stats.parallel_wall_nanos,
            });
            return;
        };
        let seq_delta = self.main.cycles.saturating_sub(mark.seq_cycles);
        if seq_delta < PACE_MIN_CYCLES {
            // Too short to time; keep accumulating against the old markers.
            return;
        }
        let wall_delta = now.duration_since(mark.wall).as_nanos() as u64;
        let parallel_delta = self
            .stats
            .parallel_wall_nanos
            .saturating_sub(mark.parallel_wall);
        tuner.observe_pace(seq_delta, wall_delta.saturating_sub(parallel_delta));
        self.cal = Some(PaceMarkers {
            wall: now,
            seq_cycles: self.main.cycles,
            parallel_wall: self.stats.parallel_wall_nanos,
        });
    }

    /// Completes the wall-time measurement of a tuner-decided sequential
    /// invocation when the main thread reaches the loop's `LOOP_FINISH`.
    fn complete_sequential_sample(&mut self, loop_id: usize) {
        let Some(pending) = self.pending_seq.remove(&loop_id) else {
            return;
        };
        let measured = pending.started.elapsed().as_nanos() as u64;
        if let Some(tuner) = self.tuner.as_mut() {
            tuner.observe_sequential(loop_id, pending.iterations, measured);
        }
        self.recorder.instant(
            "dbm.tune",
            "tune.decision",
            &[
                ("loop", loop_id.into()),
                ("backend", "sequential".into()),
                ("chunks", 0u64.into()),
                ("iterations", pending.iterations.into()),
                (
                    "predicted_nanos",
                    pending.predicted_nanos.map_or(
                        janus_obs::ArgValue::Str("none".to_string()),
                        janus_obs::ArgValue::U64,
                    ),
                ),
                ("measured_nanos", measured.into()),
                ("probe", pending.probe.into()),
            ],
        );
    }

    /// Attempts to run one invocation of loop `loop_id` in parallel.
    ///
    /// Returns `true` if the loop was executed (main's context has been
    /// updated and `main.pc` points after the loop), or `false` if this
    /// invocation must run sequentially.
    fn try_parallel_loop(&mut self, loop_id: usize) -> Result<bool> {
        self.calibrate_pace();
        let lr = self
            .prepared
            .parts
            .loops
            .get(&loop_id)
            .cloned()
            .ok_or(DbmError::BadRule {
                reason: format!("unknown loop {loop_id}"),
            })?;
        let induction = lr.induction.expect("loop has induction variable");

        // Evaluate the current induction value and the loop bound.
        let start = induction.read(&self.main, &mut self.mem);
        let bound_inst = self
            .prepared
            .parts
            .process
            .inst_at(lr.bound_cmp_addr)?
            .clone();
        let bound_operand = match &bound_inst {
            Inst::Cmp { rhs, .. } => *rhs,
            other => {
                return Err(DbmError::BadRule {
                    reason: format!("LOOP_UPDATE_BOUND target is not a compare: {other:?}"),
                })
            }
        };
        let end = self.read_operand_int(&bound_operand);
        let iterations = Self::iteration_count(start, end, lr.step, lr.continue_cond);
        let threads = i64::from(self.config.threads.max(1));
        if iterations < threads * self.config.min_iterations_per_thread.max(1) as i64 {
            self.stats.sequential_fallbacks += 1;
            return Ok(false);
        }

        // SPECULATE: may-dependent loops run under the iteration-level
        // speculation engine; bounds checks are subsumed by validation.
        if lr.speculative {
            if !(self.config.enable_runtime_checks && self.config.enable_speculation) {
                self.stats.sequential_fallbacks += 1;
                return Ok(false);
            }
            return self.try_speculative_loop(&lr, induction, start, iterations);
        }

        // Runtime array-bounds checks (MEM_BOUNDS_CHECK).
        if !lr.bounds_pairs.is_empty() {
            if !self.config.enable_runtime_checks {
                self.stats.sequential_fallbacks += 1;
                return Ok(false);
            }
            self.stats.bounds_checks_executed += lr.bounds_pairs.len() as u64;
            self.stats.breakdown.checks +=
                self.config.bounds_check_cost * lr.bounds_pairs.len() as u64;
            for (a, b) in &lr.bounds_pairs {
                let ra = a.range(&self.main, iterations);
                let rb = b.range(&self.main, iterations);
                if ra.0 < rb.1 && rb.0 < ra.1 {
                    // Overlap: the loop runs sequentially (and the modified
                    // code for it would be flushed in a real code cache).
                    self.stats.sequential_fallbacks += 1;
                    return Ok(false);
                }
            }
        }
        if !lr.tx_calls.is_empty() && !self.config.enable_runtime_checks {
            self.stats.sequential_fallbacks += 1;
            return Ok(false);
        }

        // Adaptive execution: ask the tuner whether this invocation should
        // run in parallel at all, and into how many chunks. A Sequential
        // decision starts a wall-time measurement that completes at the
        // loop's LOOP_FINISH (the caller marks the loop active-sequential);
        // a Parallel decision may retarget the chunk count away from the
        // configured thread count. Wall-time-only policy — guest results
        // are identical either way.
        let mut chunk_target = threads;
        let mut tune = None;
        if let Some(tuner) = self.tuner.as_mut() {
            let outcome = tuner.decide(loop_id, iterations as u64, self.config.threads.max(1));
            match outcome.decision {
                TuneDecision::Sequential => {
                    self.stats.tune_sequential_decisions += 1;
                    self.pending_seq.insert(
                        loop_id,
                        PendingSequential {
                            started: Instant::now(),
                            iterations: iterations as u64,
                            predicted_nanos: outcome.predicted_nanos,
                            probe: outcome.probe,
                        },
                    );
                    return Ok(false);
                }
                TuneDecision::Parallel { chunks } => {
                    self.stats.tune_parallel_decisions += 1;
                    chunk_target = i64::from(chunks.max(1));
                    tune = Some(outcome);
                }
            }
        }

        // Plan: split the iteration space into contiguous chunks and fork a
        // guest context per chunk — a copy of the main context with a private
        // stack holding a copy of the main frame, the chunk's induction start
        // and privatised reduction accumulators.
        self.stats.parallel_invocations += 1;
        // Iteration and chunk-target counts are positive here, so the
        // unsigned `div_ceil` (stable, unlike the signed one) applies.
        let chunk = (iterations as u64).div_ceil(chunk_target as u64) as i64;
        let num_chunks = (iterations as u64).div_ceil(chunk as u64) as usize;
        let main_fp = self.main.read_gpr(Reg::FP) as u64;
        let main_sp = self.main.sp();
        let frame_lo = main_sp.saturating_sub(256);
        let frame_hi = main_fp + 768;
        let frame_bytes = self
            .mem
            .read_bytes(frame_lo, (frame_hi - frame_lo) as usize);

        let mut plans: Vec<ChunkPlan> = Vec::with_capacity(num_chunks);
        for t in 0..num_chunks {
            let chunk_start_iter = t as i64 * chunk;
            let chunk_end_iter = ((t as i64 + 1) * chunk).min(iterations);
            let thread_start = start + chunk_start_iter * lr.step;
            let thread_end = start + chunk_end_iter * lr.step;

            let mut cpu = self.main.clone();
            cpu.cycles = 0;
            cpu.retired = 0;
            let delta = (t as u64 + 1) * STACK_SIZE;
            cpu.write_gpr(Reg::FP, (main_fp - delta) as i64);
            cpu.set_sp(main_sp - delta);
            self.mem.write_bytes(frame_lo - delta, &frame_bytes);

            // LOOP_UPDATE_BOUND: the thread's bound is its chunk end.
            let thread_bound = match lr.continue_cond {
                3 => thread_end - lr.step, // Le
                5 => thread_end - lr.step, // Ge
                _ => thread_end,
            };
            // Thread-private induction start.
            induction.write(&mut cpu, &mut self.mem, thread_start);
            // Privatised reduction accumulators: thread 0 keeps the incoming
            // value, the others start from the identity.
            if t > 0 {
                for (var, _, is_float) in &lr.reductions {
                    let zero = if *is_float { 0f64.to_bits() as i64 } else { 0 };
                    var.write(&mut cpu, &mut self.mem, zero);
                }
            }
            self.stats.breakdown.init_finish += self.config.loop_init_cost;
            cpu.pc = lr.header;
            plans.push(ChunkPlan {
                cpu,
                bound: thread_bound,
            });
        }

        // Execute: the configured backend runs the chunks (inline in virtual
        // time, or on OS worker threads) and merges all memory and code-cache
        // effects back before returning.
        let backend = self.config.backend.backend();
        let ctx = ChunkContext {
            process: &self.prepared.parts.process,
            lr: &lr,
            config: &self.config,
            recorder: &self.recorder,
        };
        let batch = backend.run_chunks(&ctx, &plans, &mut self.mem, &mut self.cache)?;
        self.fold_chunk_effects(batch.effects);
        for r in &batch.results {
            self.stats.retired += r.cpu.retired;
        }
        self.stats.breakdown.init_finish += self.config.loop_finish_cost * num_chunks as u64;
        self.stats.breakdown.parallel += batch.parallel_cycles;
        self.stats.os_threads_used = self.stats.os_threads_used.max(batch.os_threads);
        self.stats.parallel_wall_nanos += batch.wall_nanos;
        crate::meter::meter(self.config.backend)
            .chunk_wall_nanos
            .record(batch.wall_nanos);
        self.stats.merge_pages_skipped += batch.merge.pages_skipped;
        self.stats.merge_pages_merged += batch.merge.pages_merged;
        if batch.merge.pages_skipped > 0 {
            self.recorder.instant(
                "dbm.chunk",
                "merge.pages_skipped",
                &[
                    ("loop", loop_id.into()),
                    ("pages_skipped", batch.merge.pages_skipped.into()),
                    ("pages_merged", batch.merge.pages_merged.into()),
                ],
            );
        }

        // Feed the measurement back to the tuner and surface the decision.
        if let Some(outcome) = tune {
            let chunk_cycles: u64 = batch.results.iter().map(|r| r.cpu.cycles).sum();
            if let Some(tuner) = self.tuner.as_mut() {
                tuner.observe_parallel(
                    loop_id,
                    chunk_target as u32,
                    iterations as u64,
                    batch.wall_nanos,
                    chunk_cycles,
                );
            }
            self.recorder.instant(
                "dbm.tune",
                "tune.decision",
                &[
                    ("loop", loop_id.into()),
                    ("backend", "parallel".into()),
                    ("chunks", (chunk_target as u64).into()),
                    ("iterations", (iterations as u64).into()),
                    (
                        "predicted_nanos",
                        outcome.predicted_nanos.map_or(
                            janus_obs::ArgValue::Str("none".to_string()),
                            janus_obs::ArgValue::U64,
                        ),
                    ),
                    ("measured_nanos", batch.wall_nanos.into()),
                    ("probe", outcome.probe.into()),
                ],
            );
        }

        // Accumulate reduction contributions.
        // Both add- and sub-reductions merge by addition: every thread
        // after the first starts from the identity, so its accumulator
        // holds a (possibly negative) delta to fold into the total.
        let mut reduction_totals: Vec<i64> = lr
            .reductions
            .iter()
            .map(
                |(_var, _, is_float)| {
                    if *is_float {
                        0f64.to_bits() as i64
                    } else {
                        0
                    }
                },
            )
            .collect();
        for r in &batch.results {
            for (idx, (var, _op, is_float)) in lr.reductions.iter().enumerate() {
                let v = var.read(&r.cpu, &mut self.mem);
                let total = &mut reduction_totals[idx];
                if *is_float {
                    let sum = f64::from_bits(*total as u64);
                    let val = f64::from_bits(v as u64);
                    *total = (sum + val).to_bits() as i64;
                } else {
                    *total = total.wrapping_add(v);
                }
            }
        }

        // LOOP_FINISH: merge contexts back into the main thread. The last
        // thread executed the final iterations, so its register state is the
        // state a sequential execution would have left behind.
        let last = batch.results.last().expect("at least one chunk ran");
        let saved_sp = self.main.sp();
        let saved_fp = self.main.read_gpr(Reg::FP);
        self.main.gpr = last.cpu.gpr;
        self.main.vreg = last.cpu.vreg;
        self.main.flags = last.cpu.flags;
        self.main.set_sp(saved_sp);
        self.main.write_gpr(Reg::FP, saved_fp);
        // Stack-slot induction variables live in the (private) frame of the
        // last thread; propagate the final value to the main frame.
        if let VarSpec::Stack(_) = induction {
            let final_value = induction.read(&last.cpu, &mut self.mem);
            induction.write(&mut self.main, &mut self.mem, final_value);
        }
        // Combined reductions overwrite the merged context.
        for (idx, (var, _, _)) in lr.reductions.iter().enumerate() {
            var.write(&mut self.main, &mut self.mem, reduction_totals[idx]);
        }
        self.main.pc = last.exit_pc;
        Ok(true)
    }

    /// Folds the side effects of one chunk batch into the run's statistics
    /// and output streams.
    fn fold_chunk_effects(&mut self, fx: ChunkSideEffects) {
        self.stats.blocks_translated += fx.blocks_translated;
        self.stats.block_executions += fx.block_executions;
        self.stats.breakdown.translation += fx.translation_cycles;
        self.stats.stm_transactions += fx.stm_transactions;
        self.stats.stm_aborts += fx.stm_aborts;
        self.stats.stm_reads += fx.stm_reads;
        self.stats.stm_writes += fx.stm_writes;
        self.stats.breakdown.stm += fx.stm_cycles;
        self.output_ints.extend(fx.output_ints);
        self.output_floats.extend(fx.output_floats);
    }

    /// Runs one invocation of a may-dependent loop under the Block-STM-style
    /// speculation engine: every iteration executes optimistically against a
    /// multi-version view of guest memory, validates lazily, and only the
    /// dependents of a conflicting iteration are re-executed.
    ///
    /// Returns `true` when the invocation succeeded (main's context has been
    /// merged and `main.pc` points after the loop), `false` when the engine
    /// gave up and the loop must run sequentially.
    fn try_speculative_loop(
        &mut self,
        lr: &LoopRt,
        induction: VarSpec,
        start: i64,
        iterations: i64,
    ) -> Result<bool> {
        // Per-iteration contexts restart from the loop-entry register state,
        // so the induction variable and any reduction accumulators must live
        // in registers (the rule generator guarantees this for selected
        // loops; fall back rather than fault if a schedule says otherwise).
        let VarSpec::Reg(ind_raw) = induction else {
            self.stats.sequential_fallbacks += 1;
            return Ok(false);
        };
        let ind_reg = Reg::from_raw(ind_raw).ok_or_else(|| DbmError::BadRule {
            reason: format!("bad induction register {ind_raw} in SPECULATE loop"),
        })?;
        if lr
            .reductions
            .iter()
            .any(|(var, _, _)| !matches!(var, VarSpec::Reg(_)))
        {
            self.stats.sequential_fallbacks += 1;
            return Ok(false);
        }

        let template = {
            let mut cpu = self.main.clone();
            cpu.cycles = 0;
            cpu.retired = 0;
            cpu
        };
        let spec_config = janus_spec::SpecConfig {
            lanes: self.config.threads.max(1),
            read_overhead: self.config.spec.read,
            write_overhead: self.config.spec.write,
            validate_base_cost: self.config.spec.validate * 3,
            validate_read_cost: self.config.spec.validate,
            abort_cost: self.config.spec.abort,
            commit_cost_per_write: self.config.spec.write / 2,
            max_task_factor: self.config.spec.max_task_factor,
        };
        let backend = self.config.backend.backend();

        // Split the borrows the iteration body needs off `self` so the guest
        // memory can be temporarily moved into the engine.
        let process = &self.prepared.parts.process;
        let cycle_limit = self.config.cycle_limit;
        let reductions = &lr.reductions;
        let finish_addrs = &lr.finish_addrs;
        let header = lr.header;
        let bound_cmp_addr = lr.bound_cmp_addr;
        let continue_cond = lr.continue_cond;
        let step = lr.step;
        let mut base = std::mem::take(&mut self.mem);

        // `Fn + Sync`, not `FnMut`: the native backend calls the body
        // concurrently from racing pool workers (every capture is read-only;
        // per-incarnation state lives in the cloned `Cpu` and the view).
        let body = |iter: usize,
                    view: &mut janus_spec::SpecView<'_, FlatMemory>|
         -> std::result::Result<janus_spec::IterationRun<(Cpu, u64)>, DbmError> {
            let mut cpu = template.clone();
            let value = start + iter as i64 * step;
            cpu.write_gpr(ind_reg, value);
            // Privatised reduction accumulators: iteration 0 keeps the
            // incoming value, the others start from the identity.
            if iter > 0 {
                for (var, _, is_float) in reductions {
                    let zero = if *is_float { 0f64.to_bits() as i64 } else { 0 };
                    if let VarSpec::Reg(r) = var {
                        let reg = Reg::from_raw(*r).expect("valid register in rule");
                        if reg.is_gpr() {
                            cpu.write_gpr(reg, zero);
                        } else {
                            cpu.write_f64(reg, f64::from_bits(zero as u64));
                        }
                    }
                }
            }
            // LOOP_UPDATE_BOUND specialised to exactly one iteration.
            let iter_end = value + step;
            let bound = match continue_cond {
                3 | 5 => iter_end - step, // Le / Ge
                _ => iter_end,
            };
            cpu.pc = header;
            loop {
                if cpu.cycles > cycle_limit {
                    return Err(DbmError::CycleLimitExceeded { limit: cycle_limit });
                }
                let pc = cpu.pc;
                if finish_addrs.contains(&pc) {
                    return Ok(janus_spec::IterationRun {
                        cycles: cpu.cycles,
                        payload: (cpu, pc),
                    });
                }
                let mut inst = process.inst_at(pc)?.clone();
                if pc == bound_cmp_addr {
                    if let Inst::Cmp { lhs, .. } = inst {
                        inst = Inst::Cmp {
                            lhs,
                            rhs: Operand::Imm(bound),
                        };
                    }
                }
                let next_pc = pc + INST_SIZE as u64;
                match exec_inst(&mut cpu, &mut *view, &inst, next_pc)? {
                    Effect::Continue => cpu.pc = next_pc,
                    Effect::Jump(t) => cpu.pc = t,
                    // Calls and system calls are excluded from
                    // speculative loops by classification; reaching one
                    // here means the iteration ran off consistent state
                    // (the engine retries) or the schedule is bad.
                    other => {
                        return Err(DbmError::BadRule {
                            reason: format!(
                                "unsupported control flow in speculative loop: {other:?}"
                            ),
                        })
                    }
                }
            }
        };
        let invocation = backend.run_speculative_invocation(
            &spec_config,
            self.config.spec_commit,
            &mut base,
            iterations as usize,
            &body,
            &self.recorder,
        );
        self.mem = base;
        self.stats.parallel_wall_nanos += invocation.wall_nanos;
        crate::meter::meter(self.config.backend)
            .chunk_wall_nanos
            .record(invocation.wall_nanos);
        self.stats.os_threads_used = self.stats.os_threads_used.max(invocation.os_threads);

        let outcome = match invocation.result {
            Ok(outcome) => outcome,
            Err(janus_spec::SpecError::Body(e)) => return Err(e),
            Err(janus_spec::SpecError::AbortLimit { .. }) => {
                // Too dependent to speculate profitably: run sequentially.
                self.stats.spec_fallbacks += 1;
                self.stats.sequential_fallbacks += 1;
                return Ok(false);
            }
        };

        let s = &outcome.stats;
        self.stats.parallel_invocations += 1;
        self.stats.spec_invocations += 1;
        self.stats.spec_iterations += s.iterations;
        self.stats.spec_executions += s.executions;
        self.stats.spec_aborts += s.aborts;
        self.stats.spec_validations += s.validations;
        self.stats.spec_reads += s.reads;
        self.stats.spec_writes += s.writes;
        self.stats.breakdown.parallel += outcome.parallel_cycles;
        self.stats.breakdown.init_finish += (self.config.loop_init_cost
            + self.config.loop_finish_cost)
            * u64::from(self.config.threads.max(1));

        // Reduction totals across iterations (iteration 0 carries the
        // incoming value, the rest are deltas).
        let mut reduction_totals: Vec<i64> = lr
            .reductions
            .iter()
            .map(
                |(_var, _, is_float)| {
                    if *is_float {
                        0f64.to_bits() as i64
                    } else {
                        0
                    }
                },
            )
            .collect();
        for (cpu, _) in &outcome.payloads {
            self.stats.retired += cpu.retired;
            for (idx, (var, _op, is_float)) in lr.reductions.iter().enumerate() {
                let v = var.read(cpu, &mut self.mem);
                let total = &mut reduction_totals[idx];
                if *is_float {
                    let sum = f64::from_bits(*total as u64);
                    let val = f64::from_bits(v as u64);
                    *total = (sum + val).to_bits() as i64;
                } else {
                    *total = total.wrapping_add(v);
                }
            }
        }

        // Merge the last iteration's context back into the main thread, as a
        // sequential execution would have left it.
        let (last_cpu, exit_pc) = outcome.payloads.last().expect("at least one iteration ran");
        let saved_sp = self.main.sp();
        let saved_fp = self.main.read_gpr(Reg::FP);
        self.main.gpr = last_cpu.gpr;
        self.main.vreg = last_cpu.vreg;
        self.main.flags = last_cpu.flags;
        self.main.set_sp(saved_sp);
        self.main.write_gpr(Reg::FP, saved_fp);
        for (idx, (var, _, _)) in lr.reductions.iter().enumerate() {
            var.write(&mut self.main, &mut self.mem, reduction_totals[idx]);
        }
        self.main.pc = *exit_pc;
        Ok(true)
    }

    fn read_operand_int(&mut self, op: &Operand) -> i64 {
        match op {
            Operand::Imm(v) => *v,
            Operand::Reg(r) => self.main.read_gpr(*r),
            Operand::Mem(m) => {
                let addr = janus_vm::exec::effective_addr(&self.main, m);
                self.mem.read_i64(addr)
            }
        }
    }
}

/// Whether executing `inst` goes through the DBM's indirect-branch target
/// lookup ([`DbmConfig::indirect_lookup_cost`]). One definition shared by
/// the main dispatch loop and chunk execution so their cycle accounting
/// cannot drift apart.
fn needs_indirect_lookup(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::JmpInd { .. } | Inst::CallInd { .. } | Inst::CallExt { .. } | Inst::Ret
    )
}

/// Runs one planned chunk from the loop header until it reaches a
/// `LOOP_FINISH` address, and returns that address.
///
/// This is the backend-agnostic chunk executor: generic over the guest
/// memory view (`&mut FlatMemory` under virtual time, a [`janus_vm::CowMemory`]
/// overlay on an OS worker thread) and over the code-cache accounting
/// strategy ([`BlockAccounting`]: live against the shared cache, or deferred
/// counts replayed after the workers join). It is free of `Dbm` state —
/// every other side effect (guest output, STM counters) goes into
/// [`ChunkSideEffects`], which the caller folds back in chunk order.
pub(crate) fn run_chunk<M: GuestMemory, A: BlockAccounting>(
    ctx: &ChunkContext<'_>,
    cpu: &mut Cpu,
    mem: &mut M,
    accounting: &mut A,
    thread_bound: i64,
    fx: &mut ChunkSideEffects,
) -> Result<u64> {
    let config = ctx.config;
    let lr = ctx.lr;
    loop {
        if cpu.cycles > config.cycle_limit {
            return Err(DbmError::CycleLimitExceeded {
                limit: config.cycle_limit,
            });
        }
        let pc = cpu.pc;
        if lr.finish_addrs.contains(&pc) {
            return Ok(pc);
        }
        accounting.record(pc, config, fx);
        let mut inst = ctx.process.inst_at(pc)?.clone();
        // LOOP_UPDATE_BOUND handler: specialise the loop-bound compare for
        // this thread's chunk.
        if pc == lr.bound_cmp_addr {
            if let Inst::Cmp { lhs, .. } = inst {
                inst = Inst::Cmp {
                    lhs,
                    rhs: Operand::Imm(thread_bound),
                };
            }
        }
        let next_pc = pc + INST_SIZE as u64;
        // TX_START handler: dynamically discovered code runs under the
        // just-in-time STM.
        if lr.tx_calls.contains(&pc) && config.enable_runtime_checks {
            if let Inst::CallExt { plt } = inst {
                run_transactional_call(ctx, cpu, mem, plt, next_pc, fx)?;
                cpu.pc = next_pc;
                continue;
            }
        }
        if needs_indirect_lookup(&inst) {
            fx.translation_cycles += config.indirect_lookup_cost;
        }
        let effect = exec_inst(cpu, mem, &inst, next_pc)?;
        match effect {
            Effect::Continue => cpu.pc = next_pc,
            Effect::Jump(t) => cpu.pc = t,
            Effect::Halt => return Ok(pc),
            Effect::External { plt } => match ctx.process.resolve_plt(plt)?.clone() {
                ResolvedPlt::Guest { addr, .. } => cpu.pc = addr,
                ResolvedPlt::Native { name } => {
                    match name.as_str() {
                        "print_i64" => fx.output_ints.push(cpu.read_gpr(Reg::R0)),
                        "print_f64" => fx.output_floats.push(cpu.read_f64(Reg::V0)),
                        other => {
                            return Err(DbmError::Vm(janus_vm::VmError::UnknownExternal {
                                name: other.to_string(),
                            }))
                        }
                    }
                    let ret = janus_vm::exec::pop_value(cpu, mem) as u64;
                    cpu.pc = ret;
                }
            },
            Effect::Syscall { num } => {
                // Parallelised loops never contain system calls (the
                // static analyser rejects them), but be safe.
                let _ = num;
                return Err(DbmError::BadRule {
                    reason: "system call inside a parallelised loop".to_string(),
                });
            }
        }
    }
}

/// Executes an external (shared-library) call speculatively under the
/// software transactional memory: the `TX_START` / `TX_FINISH` pair of
/// the paper. Generic over the guest memory view for the same reason as
/// [`run_chunk`]; under the native-threads backend the transaction commits
/// into the chunk's private overlay.
fn run_transactional_call<M: GuestMemory>(
    ctx: &ChunkContext<'_>,
    cpu: &mut Cpu,
    mem: &mut M,
    plt: u32,
    return_pc: u64,
    fx: &mut ChunkSideEffects,
) -> Result<()> {
    let config = ctx.config;
    let target = match ctx.process.resolve_plt(plt)?.clone() {
        ResolvedPlt::Guest { addr, .. } => addr,
        ResolvedPlt::Native { name } => {
            // Native helpers have no guest-visible memory effects; run
            // them directly.
            match name.as_str() {
                "print_i64" => fx.output_ints.push(cpu.read_gpr(Reg::R0)),
                "print_f64" => fx.output_floats.push(cpu.read_f64(Reg::V0)),
                other => {
                    return Err(DbmError::Vm(janus_vm::VmError::UnknownExternal {
                        name: other.to_string(),
                    }))
                }
            }
            return Ok(());
        }
    };
    fx.stm_transactions += 1;
    let checkpoint = cpu.clone();
    let mut tx = TxView::new(mem);
    // The call's return address is pushed inside the transaction.
    janus_vm::exec::push_value(cpu, &mut tx, return_pc as i64);
    cpu.pc = target;
    let mut ok = true;
    loop {
        if cpu.pc == return_pc {
            break;
        }
        if cpu.cycles > config.cycle_limit {
            ok = false;
            break;
        }
        let pc = cpu.pc;
        let inst = match ctx.process.inst_at(pc) {
            Ok(i) => i.clone(),
            Err(_) => {
                ok = false;
                break;
            }
        };
        let next_pc = pc + INST_SIZE as u64;
        let effect = exec_inst(cpu, &mut tx, &inst, next_pc)?;
        match effect {
            Effect::Continue => cpu.pc = next_pc,
            Effect::Jump(t) => cpu.pc = t,
            _ => {
                ok = false;
                break;
            }
        }
    }
    let tx_stats = tx.stats();
    fx.stm_reads += tx_stats.reads;
    fx.stm_writes += tx_stats.writes;
    let stm_cost = tx_stats.reads * config.stm.read
        + tx_stats.writes * config.stm.write
        + (tx_stats.reads + tx_stats.writes) * config.stm.commit;
    fx.stm_cycles += stm_cost;
    cpu.cycles += stm_cost;
    let committed = ok && tx.commit();
    if !committed {
        // Abort: roll back to the checkpoint and re-execute the call
        // non-speculatively (the thread is treated as the oldest).
        fx.stm_aborts += 1;
        *cpu = checkpoint;
        janus_vm::exec::push_value(cpu, mem, return_pc as i64);
        cpu.pc = target;
        loop {
            if cpu.pc == return_pc {
                break;
            }
            let pc = cpu.pc;
            let inst = ctx.process.inst_at(pc)?.clone();
            let next_pc = pc + INST_SIZE as u64;
            match exec_inst(cpu, mem, &inst, next_pc)? {
                Effect::Continue => cpu.pc = next_pc,
                Effect::Jump(t) => cpu.pc = t,
                _ => {
                    return Err(DbmError::BadRule {
                        reason: "unsupported control flow in shared-library call".to_string(),
                    })
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varspec_encoding_round_trip() {
        for spec in [VarSpec::Reg(4), VarSpec::Reg(31), VarSpec::Stack(-64)] {
            let (k, v) = spec.encode();
            assert_eq!(VarSpec::decode(k, v), Some(spec));
        }
        assert_eq!(VarSpec::decode(9, 0), None);
    }

    #[test]
    fn sidespec_encoding_round_trip() {
        for spec in [
            SideSpec {
                reg: None,
                base_or_offset: 0x600000,
                stride: 8,
            },
            SideSpec {
                reg: Some(5),
                base_or_offset: 16,
                stride: 32,
            },
            SideSpec {
                reg: Some(9),
                base_or_offset: -8,
                stride: -16,
            },
        ] {
            let (a, b) = spec.encode();
            assert_eq!(SideSpec::decode(a, b), spec);
        }
    }

    #[test]
    fn iteration_count_matches_loop_semantics() {
        // for (i = 0; i < 100; i += 1)
        assert_eq!(Dbm::iteration_count(0, 100, 1, 2), 100);
        // for (i = 0; i <= 100; i += 1)
        assert_eq!(Dbm::iteration_count(0, 100, 1, 3), 101);
        // for (i = 0; i < 100; i += 3)
        assert_eq!(Dbm::iteration_count(0, 100, 3, 2), 34);
        // for (i = 100; i > 0; i -= 1)
        assert_eq!(Dbm::iteration_count(100, 0, -1, 4), 100);
        // empty
        assert_eq!(Dbm::iteration_count(10, 10, 1, 2), 0);
        assert_eq!(Dbm::iteration_count(20, 10, 1, 2), 0);
    }

    #[test]
    fn sidespec_range_uses_register_base() {
        let mut cpu = Cpu::new();
        cpu.write_gpr(Reg::R5, 0x1000);
        let s = SideSpec {
            reg: Some(Reg::R5.raw()),
            base_or_offset: 8,
            stride: 8,
        };
        let (lo, hi) = s.range(&cpu, 10);
        assert_eq!(lo, 0x1008);
        assert_eq!(hi, 0x1008 + 9 * 8 + 8);
    }
}
