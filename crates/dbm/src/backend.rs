//! The execution-backend layer: how planned parallel-loop chunks actually
//! run.
//!
//! [`crate::Dbm`] plans a parallel-loop invocation — iteration counting,
//! chunking, per-chunk register contexts, private stack frames, bounds
//! checks — without committing to an execution substrate. The plan is then
//! handed to an [`ExecutionBackend`]:
//!
//! * [`VirtualTimeBackend`] executes the chunks one after another on the
//!   coordinating thread against the shared guest memory, exactly as the
//!   original virtual-time runtime did. Deterministic and bit-reproducible.
//! * [`NativeThreadsBackend`] spawns one OS thread per chunk. Each worker
//!   executes against a [`CowMemory`] view (shared read-only base image plus
//!   a private byte-masked write overlay) and records its block executions
//!   for deferred accounting; after the workers join, overlays and counters
//!   are merged back in chunk order, reproducing the virtual-time backend's
//!   memory image while the work itself ran concurrently. Loops whose
//!   schedule carries `TX_START` rules (STM-wrapped shared-library calls —
//!   potential cross-chunk dependences by definition) conservatively take
//!   the sequential chunk path instead.
//!
//! Both backends charge modelled cycles through the same worker-lane
//! abstraction ([`janus_spec::LaneSet`]) that the speculation engine uses,
//! so reported cycle counts are deterministic and comparable regardless of
//! where the chunks physically ran. The speculative (`SPECULATE`) path is
//! also routed through the trait: the virtual-time backend drives the
//! deterministic `janus-spec` coordinator engine, while the native-threads
//! backend first *races* the incarnations across a real Block-STM worker
//! pool ([`janus_spec::run_speculative_pooled`], one OS thread per lane)
//! over the read-only memory image and then replays the deterministic
//! engine in commit order for the modelled statistics and the commit — the
//! two serial-equivalent final images are cross-checked word for word, so
//! speculative results stay bit-identical across backends while the wall
//! clock measures the actual fan-out.

use crate::runtime::LoopRt;
use crate::{DbmConfig, DbmError, Result, SpecCommitMode};
use janus_obs::Recorder;
use janus_spec::{IterationRun, LaneSet, Lanes, SpecConfig, SpecError, SpecOutcome, SpecView};
use janus_vm::{
    merge_chunk_overlays, ChunkOverlay, CowMemory, Cpu, FlatMemory, GuestMemory, MergeStats,
    Process,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

/// Selects which [`ExecutionBackend`] runs parallel-loop chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Deterministic virtual-time simulation: chunks run sequentially on the
    /// coordinating thread, parallelism exists only in the modelled clock.
    #[default]
    VirtualTime,
    /// Real OS-thread execution: chunks run concurrently on `std::thread`
    /// workers over copy-on-write memory views.
    NativeThreads,
}

impl BackendKind {
    /// Parses a backend name as used by CLI flags and the `JANUS_BACKEND`
    /// environment variable.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "virtual" | "virtual-time" | "vt" | "sim" => Some(BackendKind::VirtualTime),
            "native" | "native-threads" | "threads" | "os" => Some(BackendKind::NativeThreads),
            _ => None,
        }
    }

    /// The backend selected by the `JANUS_BACKEND` environment variable, or
    /// the default (virtual-time) when unset or unrecognised.
    #[must_use]
    pub fn from_env() -> BackendKind {
        std::env::var("JANUS_BACKEND")
            .ok()
            .and_then(|v| BackendKind::parse(&v))
            .unwrap_or_default()
    }

    /// Stable machine-readable name (also accepted by [`BackendKind::parse`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::VirtualTime => "virtual",
            BackendKind::NativeThreads => "native",
        }
    }

    /// The (stateless, shared) backend implementation for this kind.
    #[must_use]
    pub fn backend(self) -> &'static dyn ExecutionBackend {
        match self {
            BackendKind::VirtualTime => &VirtualTimeBackend,
            BackendKind::NativeThreads => &NativeThreadsBackend,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Code-cache model state: which block entry addresses have been translated
/// and how often each has been dispatched. Shared by the main thread's
/// dispatch loop and (directly, or via per-worker clones) by chunk execution.
#[derive(Debug, Clone, Default)]
pub struct CodeCache {
    translated: HashSet<u64>,
    exec_counts: HashMap<u64, u64>,
}

impl CodeCache {
    /// Fresh, empty cache.
    #[must_use]
    pub(crate) fn new() -> CodeCache {
        CodeCache::default()
    }

    /// Records one execution of the block at `pc` and returns
    /// `(overhead_cycles, newly_translated)` per the code-cache cost model:
    /// a translation cost the first time the block is reached and a dispatch
    /// cost until it has run often enough to be linked into a trace.
    pub(crate) fn account_block(&mut self, pc: u64, config: &DbmConfig) -> (u64, bool) {
        let count = self.exec_counts.entry(pc).or_insert(0);
        *count += 1;
        let count = *count;
        let mut overhead = 0;
        let newly_translated = self.translated.insert(pc);
        if newly_translated {
            overhead += config.translation_cost;
        }
        if count <= config.link_threshold {
            overhead += config.dispatch_cost;
        }
        (overhead, newly_translated)
    }

    /// Records `executions` executions of the block at `pc` in one step and
    /// returns the same `(overhead_cycles, newly_translated)` total that
    /// `executions` individual [`CodeCache::account_block`] calls would have
    /// produced: the per-execution charge depends only on the running count,
    /// so a batch can be replayed after the fact. This is how worker threads'
    /// deferred execution counts are folded back — in chunk order — so the
    /// native-threads backend charges exactly what the virtual-time backend
    /// charges.
    pub(crate) fn charge_executions(
        &mut self,
        pc: u64,
        executions: u64,
        config: &DbmConfig,
    ) -> (u64, bool) {
        let count = self.exec_counts.entry(pc).or_insert(0);
        let before = *count;
        *count += executions;
        let mut overhead = 0;
        let newly_translated = executions > 0 && self.translated.insert(pc);
        if newly_translated {
            overhead += config.translation_cost;
        }
        let dispatched = config.link_threshold.saturating_sub(before).min(executions);
        overhead += config.dispatch_cost * dispatched;
        (overhead, newly_translated)
    }
}

/// How chunk execution accounts basic-block executions against the code
/// cache: immediately against the shared cache (virtual time — chunks run
/// sequentially, so the cache is free), or deferred into a private count map
/// that the coordinator replays in chunk order after the workers join
/// (native threads). Both roads produce identical charge totals.
pub(crate) trait BlockAccounting {
    /// Records one execution of the block at `pc`.
    fn record(&mut self, pc: u64, config: &DbmConfig, fx: &mut ChunkSideEffects);
}

/// Immediate accounting against the shared [`CodeCache`].
pub(crate) struct LiveAccounting<'a>(pub(crate) &'a mut CodeCache);

impl BlockAccounting for LiveAccounting<'_> {
    fn record(&mut self, pc: u64, config: &DbmConfig, fx: &mut ChunkSideEffects) {
        let (overhead, newly_translated) = self.0.account_block(pc, config);
        if newly_translated {
            fx.blocks_translated += 1;
        }
        fx.block_executions += 1;
        fx.translation_cycles += overhead;
    }
}

/// Deferred accounting: per-block execution counts only, charged later by
/// [`CodeCache::charge_executions`].
#[derive(Debug, Default)]
pub(crate) struct DeferredAccounting {
    counts: HashMap<u64, u64>,
}

impl BlockAccounting for DeferredAccounting {
    fn record(&mut self, pc: u64, _config: &DbmConfig, _fx: &mut ChunkSideEffects) {
        *self.counts.entry(pc).or_insert(0) += 1;
    }
}

impl DeferredAccounting {
    /// Replays the recorded executions against the shared cache, folding the
    /// charges into `fx`. Iterates in address order for full determinism
    /// (the totals are order-independent anyway — distinct blocks have
    /// independent counters).
    fn replay(self, cache: &mut CodeCache, config: &DbmConfig, fx: &mut ChunkSideEffects) {
        let mut counts: Vec<(u64, u64)> = self.counts.into_iter().collect();
        counts.sort_unstable();
        for (pc, executions) in counts {
            let (overhead, newly_translated) = cache.charge_executions(pc, executions, config);
            if newly_translated {
                fx.blocks_translated += 1;
            }
            fx.block_executions += executions;
            fx.translation_cycles += overhead;
        }
    }
}

/// One planned chunk of a parallel-loop invocation: a prepared guest context
/// (program counter at the loop header, redirected stack, thread-private
/// induction value and reduction accumulators) plus the chunk's rewritten
/// loop bound.
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    pub(crate) cpu: Cpu,
    pub(crate) bound: i64,
}

/// What executing one chunk produced: the final guest context and the
/// `LOOP_FINISH` address it stopped at.
#[derive(Debug)]
pub struct ChunkResult {
    pub(crate) cpu: Cpu,
    pub(crate) exit_pc: u64,
}

/// Side effects accumulated while executing chunks: guest output, code-cache
/// accounting and STM counters. Collected per worker and merged in chunk
/// order so the native-threads backend reproduces the virtual-time backend's
/// output ordering.
#[derive(Debug, Default)]
pub struct ChunkSideEffects {
    pub(crate) output_ints: Vec<i64>,
    pub(crate) output_floats: Vec<f64>,
    pub(crate) blocks_translated: u64,
    pub(crate) block_executions: u64,
    pub(crate) translation_cycles: u64,
    pub(crate) stm_transactions: u64,
    pub(crate) stm_aborts: u64,
    pub(crate) stm_reads: u64,
    pub(crate) stm_writes: u64,
    pub(crate) stm_cycles: u64,
}

impl ChunkSideEffects {
    fn absorb(&mut self, other: ChunkSideEffects) {
        self.output_ints.extend(other.output_ints);
        self.output_floats.extend(other.output_floats);
        self.blocks_translated += other.blocks_translated;
        self.block_executions += other.block_executions;
        self.translation_cycles += other.translation_cycles;
        self.stm_transactions += other.stm_transactions;
        self.stm_aborts += other.stm_aborts;
        self.stm_reads += other.stm_reads;
        self.stm_writes += other.stm_writes;
        self.stm_cycles += other.stm_cycles;
    }
}

/// Everything chunk execution needs to read: the loaded process, the loop's
/// runtime metadata and the DBM configuration. All borrows are immutable, so
/// a context can be shared across worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ChunkContext<'a> {
    pub(crate) process: &'a Process,
    pub(crate) lr: &'a LoopRt,
    pub(crate) config: &'a DbmConfig,
    /// Flight recorder the backends emit per-chunk run/merge spans to (the
    /// null recorder when tracing is off — one branch per emission site).
    pub(crate) recorder: &'a Recorder,
}

/// The result of executing one batch of chunks.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-chunk results, in chunk order.
    pub(crate) results: Vec<ChunkResult>,
    /// Merged side effects, in chunk order.
    pub(crate) effects: ChunkSideEffects,
    /// Modelled parallel cycles of the batch: each chunk's cycle count
    /// charged to the least-loaded of `threads` worker lanes, makespan
    /// reported. Identical across backends because chunk cycle counts do not
    /// depend on where the chunk ran.
    pub parallel_cycles: u64,
    /// Wall-clock nanoseconds the batch took (0 under virtual time).
    pub wall_nanos: u64,
    /// OS worker threads spawned for the batch (0 under virtual time).
    pub os_threads: u64,
    /// What the page-aware overlay merge did (all-zero under virtual time,
    /// which writes straight to shared memory and has nothing to merge).
    pub merge: MergeStats,
}

/// What a routed speculative invocation returned, plus its wall-clock cost.
pub struct SpecInvocationOutcome {
    pub(crate) result: std::result::Result<SpecOutcome<(Cpu, u64)>, SpecError<DbmError>>,
    /// Wall-clock nanoseconds of the invocation (0 under virtual time).
    pub wall_nanos: u64,
    /// OS worker threads the invocation's racing pool spawned (0 under
    /// virtual time).
    pub os_threads: u64,
}

impl fmt::Debug for SpecInvocationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecInvocationOutcome")
            .field("ok", &self.result.is_ok())
            .field("wall_nanos", &self.wall_nanos)
            .field("os_threads", &self.os_threads)
            .finish()
    }
}

/// The loop body driven by the speculation engine for one iteration.
/// `Fn + Sync`: the native-threads backend calls it concurrently from racing
/// worker threads, one incarnation per call.
pub type SpecBody<'a> = &'a (dyn Fn(
    usize,
    &mut SpecView<'_, FlatMemory>,
) -> std::result::Result<IterationRun<(Cpu, u64)>, DbmError>
         + Sync);

mod sealed {
    /// The backend set is closed: plans and results carry crate-private
    /// execution state, so external implementations could not construct or
    /// consume them meaningfully.
    pub trait Sealed {}
    impl Sealed for super::VirtualTimeBackend {}
    impl Sealed for super::NativeThreadsBackend {}
}

/// An execution substrate for planned parallel-loop work.
///
/// Implementations differ in *where* guest chunks run (inline vs. on OS
/// worker threads) and in what they can measure (modelled cycles only vs.
/// modelled cycles plus wall-clock time); they must agree on the resulting
/// guest memory image and program output. This trait is sealed — the two
/// implementations ship with the crate and are selected via
/// [`BackendKind::backend`] / [`DbmConfig::backend`](crate::DbmConfig).
pub trait ExecutionBackend: fmt::Debug + Send + Sync + sealed::Sealed {
    /// Which kind this backend is.
    fn kind(&self) -> BackendKind;

    /// Executes the planned chunks of one parallel-loop invocation and
    /// merges all memory effects into `mem` and all code-cache effects into
    /// `cache` before returning.
    ///
    /// # Errors
    ///
    /// Returns the first failing chunk's error, in chunk order.
    fn run_chunks(
        &self,
        ctx: &ChunkContext<'_>,
        plans: &[ChunkPlan],
        mem: &mut FlatMemory,
        cache: &mut CodeCache,
    ) -> Result<BatchOutcome>;

    /// Runs one speculative (`SPECULATE`) loop invocation through the
    /// `janus-spec` engine. `commit` selects how the native-threads backend
    /// lands the result ([`SpecCommitMode`]); the virtual-time backend is
    /// always deterministic and ignores it. `recorder` receives incarnation
    /// events from the racing pool plus divergence/fallback diagnostics
    /// (pass the null recorder to trace nothing).
    fn run_speculative_invocation(
        &self,
        spec_config: &SpecConfig,
        commit: SpecCommitMode,
        base: &mut FlatMemory,
        iterations: usize,
        body: SpecBody<'_>,
        recorder: &Recorder,
    ) -> SpecInvocationOutcome;
}

/// Charges each chunk's cycles to the least-loaded worker lane and returns
/// the makespan — the one modelled-time code path shared by both backends
/// (and, via [`LaneSet`], with the speculation engine).
fn modelled_parallel_cycles(threads: u32, results: &[ChunkResult]) -> u64 {
    let mut lanes = Lanes::new(threads.max(1));
    for r in results {
        LaneSet::charge(&mut lanes, r.cpu.cycles);
    }
    LaneSet::makespan(&lanes)
}

/// The deterministic virtual-time backend: chunks execute sequentially on
/// the coordinating thread against shared guest memory and the shared code
/// cache; only the modelled clock is parallel.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualTimeBackend;

impl ExecutionBackend for VirtualTimeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::VirtualTime
    }

    fn run_chunks(
        &self,
        ctx: &ChunkContext<'_>,
        plans: &[ChunkPlan],
        mem: &mut FlatMemory,
        cache: &mut CodeCache,
    ) -> Result<BatchOutcome> {
        let mut results = Vec::with_capacity(plans.len());
        let mut effects = ChunkSideEffects::default();
        for (i, plan) in plans.iter().enumerate() {
            let _span = ctx
                .recorder
                .span("dbm.chunk", "chunk.run")
                .arg("chunk", i)
                .arg("bound", plan.bound)
                .arg("backend", "virtual");
            let mut cpu = plan.cpu.clone();
            let mut accounting = LiveAccounting(cache);
            let exit_pc = crate::runtime::run_chunk(
                ctx,
                &mut cpu,
                mem,
                &mut accounting,
                plan.bound,
                &mut effects,
            )?;
            results.push(ChunkResult { cpu, exit_pc });
        }
        let parallel_cycles = modelled_parallel_cycles(ctx.config.threads, &results);
        Ok(BatchOutcome {
            results,
            effects,
            parallel_cycles,
            wall_nanos: 0,
            os_threads: 0,
            merge: MergeStats::default(),
        })
    }

    fn run_speculative_invocation(
        &self,
        spec_config: &SpecConfig,
        _commit: SpecCommitMode,
        base: &mut FlatMemory,
        iterations: usize,
        body: SpecBody<'_>,
        recorder: &Recorder,
    ) -> SpecInvocationOutcome {
        let _span = recorder
            .span("dbm.spec", "spec.deterministic")
            .arg("iterations", iterations)
            .arg("lanes", spec_config.lanes);
        let result = janus_spec::run_speculative_with_lanes(
            spec_config,
            Lanes::new(spec_config.lanes),
            base,
            iterations,
            body,
        );
        SpecInvocationOutcome {
            result,
            wall_nanos: 0,
            os_threads: 0,
        }
    }
}

/// The native-threads backend: one OS worker thread per chunk, copy-on-write
/// memory views, merge-in-chunk-order. Modelled cycles are reported through
/// the same lane accounting as the virtual-time backend, wall-clock time and
/// thread counts on top.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeThreadsBackend;

impl ExecutionBackend for NativeThreadsBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::NativeThreads
    }

    fn run_chunks(
        &self,
        ctx: &ChunkContext<'_>,
        plans: &[ChunkPlan],
        mem: &mut FlatMemory,
        cache: &mut CodeCache,
    ) -> Result<BatchOutcome> {
        type WorkerOut = Result<(Cpu, u64, ChunkOverlay, ChunkSideEffects, DeferredAccounting)>;
        // STM-wrapped shared-library calls may carry real cross-chunk
        // read-after-write dependences (that is exactly why they run under a
        // transaction). Snapshot isolation cannot reproduce the sequential
        // chunk order the virtual-time backend commits in, so such batches
        // conservatively run through the sequential chunk path — identical
        // guest results by construction, no OS-thread fan-out for this loop.
        if !ctx.lr.tx_calls.is_empty() {
            let start = Instant::now();
            let mut batch = VirtualTimeBackend.run_chunks(ctx, plans, mem, cache)?;
            batch.wall_nanos = start.elapsed().as_nanos() as u64;
            return Ok(batch);
        }
        let start = Instant::now();
        let base: &FlatMemory = mem;
        let worker_outs: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    scope.spawn(move || -> WorkerOut {
                        let _span = ctx
                            .recorder
                            .span("dbm.chunk", "chunk.run")
                            .arg("chunk", i)
                            .arg("bound", plan.bound)
                            .arg("backend", "native");
                        let mut overlay = CowMemory::new(base);
                        let mut accounting = DeferredAccounting::default();
                        let mut effects = ChunkSideEffects::default();
                        let mut cpu = plan.cpu.clone();
                        let exit_pc = crate::runtime::run_chunk(
                            ctx,
                            &mut cpu,
                            &mut overlay,
                            &mut accounting,
                            plan.bound,
                            &mut effects,
                        )?;
                        Ok((cpu, exit_pc, overlay.into_pages(), effects, accounting))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        });

        // Merge in chunk order: dirty bytes splice over the shared image
        // (later chunks win on whole-byte overlaps, which a legal DOALL
        // cannot produce) and code-cache charges replay sequentially,
        // matching the sequential chunk order — and therefore the exact
        // cycle totals — of the virtual-time backend. The memory merge is
        // page-aware: untouched base pages are skipped outright and large
        // dirty sets merge on worker threads (page-disjoint, still in chunk
        // order within each page), all of which is wall-time-only — the
        // merged image is bit-identical to the word-by-word replay.
        let merge_span = ctx
            .recorder
            .span("dbm.chunk", "chunk.merge")
            .arg("chunks", plans.len());
        let mut results = Vec::with_capacity(plans.len());
        let mut effects = ChunkSideEffects::default();
        let mut overlays = Vec::with_capacity(plans.len());
        for out in worker_outs {
            let (cpu, exit_pc, overlay, chunk_effects, accounting) = out?;
            overlays.push(overlay);
            effects.absorb(chunk_effects);
            accounting.replay(cache, ctx.config, &mut effects);
            results.push(ChunkResult { cpu, exit_pc });
        }
        let merge = merge_chunk_overlays(mem, &overlays, ctx.config.threads as usize);
        drop(
            merge_span
                .arg("pages_merged", merge.pages_merged)
                .arg("pages_skipped", merge.pages_skipped)
                .arg("merge_threads", merge.merge_threads),
        );
        let parallel_cycles = modelled_parallel_cycles(ctx.config.threads, &results);
        Ok(BatchOutcome {
            results,
            effects,
            parallel_cycles,
            wall_nanos: start.elapsed().as_nanos() as u64,
            os_threads: plans.len() as u64,
            merge,
        })
    }

    fn run_speculative_invocation(
        &self,
        spec_config: &SpecConfig,
        commit: SpecCommitMode,
        base: &mut FlatMemory,
        iterations: usize,
        body: SpecBody<'_>,
        recorder: &Recorder,
    ) -> SpecInvocationOutcome {
        // First the *racing pool*: one OS worker per lane pulls
        // execution/validation tasks from the shared atomic scheduler and
        // runs incarnations concurrently over the read-only memory image —
        // this is where the wall clock is spent and what `os_threads_used`
        // reports.
        let threads = spec_config.lanes.max(1) as usize;
        let start = Instant::now();
        let raced = {
            let _span = recorder
                .span("dbm.spec", "spec.race")
                .arg("iterations", iterations)
                .arg("threads", threads);
            janus_spec::run_speculative_pooled_traced(
                spec_config,
                threads,
                &*base,
                iterations,
                body,
                recorder,
            )
        };
        let wall_nanos = start.elapsed().as_nanos() as u64;
        let os_threads = raced
            .as_ref()
            .map_or(threads.min(iterations.max(1)), |r| r.threads_used)
            as u64;

        // Pure wall-clock mode: commit the pool's converged (serial-
        // equivalent) image directly and skip the deterministic replay. The
        // outcome's counters describe the actual race and no modelled
        // parallel cycles are charged — callers pick this mode precisely
        // because they do not consume modelled figures. A pool that gave up
        // (`AbortLimit`), saw a fault, or left live estimate markers in the
        // store (the convergence invariant every committed image must
        // satisfy; asserted in test builds, never trusted in release) falls
        // through to the deterministic engine below, which classifies
        // genuine faults exactly and always commits a correct image.
        if commit == SpecCommitMode::RacedImage {
            if let Ok(pooled) = raced {
                debug_assert_eq!(pooled.live_estimates, 0);
                if pooled.live_estimates == 0 {
                    for &(word, value) in &pooled.image {
                        base.write_u64(word, value);
                    }
                    return SpecInvocationOutcome {
                        result: Ok(SpecOutcome {
                            stats: pooled.stats,
                            parallel_cycles: 0,
                            payloads: pooled.payloads,
                            image: pooled.image,
                        }),
                        wall_nanos,
                        os_threads,
                    };
                }
                // Structured diagnostic: visible in trace exports when a
                // recorder is attached, on stderr otherwise (never silent).
                if recorder.is_enabled() {
                    recorder.instant(
                        "dbm.spec",
                        "spec.pool-fallback",
                        &[("reason", "live-estimates".into())],
                    );
                } else {
                    eprintln!(
                        "janus-dbm: racing speculative pool left live estimates; \
                         falling back to the deterministic engine"
                    );
                }
            }
            let mut outcome = VirtualTimeBackend.run_speculative_invocation(
                spec_config,
                commit,
                base,
                iterations,
                body,
                recorder,
            );
            outcome.wall_nanos = wall_nanos;
            outcome.os_threads = os_threads;
            return outcome;
        }

        // Deterministic commit mode: replay the *deterministic coordinator*
        // in commit order on this thread; its modelled cycles, abort counts
        // and payloads are what the run reports (bit-identical to the
        // virtual-time backend by construction) and its commit is what lands
        // in guest memory. The two engines must agree on the
        // serial-equivalent final image whenever the race completes (a pool
        // that gave up with `AbortLimit` has no image to compare): the
        // comparison runs word for word in every build, asserts in
        // test/debug builds, and in release builds logs the divergence and
        // keeps the deterministic result — no panic, the correct outcome is
        // already in hand. The cross-backend equivalence battery re-checks
        // the same invariant end to end through
        // `DbmRunResult::memory_digest`.
        let mut outcome = VirtualTimeBackend.run_speculative_invocation(
            spec_config,
            commit,
            base,
            iterations,
            body,
            recorder,
        );
        if let (Ok(raced), Ok(deterministic)) = (&raced, &outcome.result) {
            let diverged = raced.image != deterministic.image || raced.live_estimates != 0;
            if diverged {
                debug_assert!(
                    false,
                    "racing Block-STM pool diverged from the deterministic engine \
                     (live estimates: {})",
                    raced.live_estimates
                );
                // Structured diagnostic: visible in trace exports when a
                // recorder is attached, on stderr otherwise (never silent).
                if recorder.is_enabled() {
                    recorder.instant(
                        "dbm.spec",
                        "spec.pool-divergence",
                        &[("live_estimates", raced.live_estimates.into())],
                    );
                } else {
                    eprintln!(
                        "janus-dbm: racing speculative pool diverged from the \
                         deterministic engine; keeping the deterministic result"
                    );
                }
            }
        }
        outcome.wall_nanos = wall_nanos;
        outcome.os_threads = os_threads;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_labels_and_aliases() {
        for kind in [BackendKind::VirtualTime, BackendKind::NativeThreads] {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.backend().kind(), kind);
        }
        assert_eq!(
            BackendKind::parse("Native-Threads"),
            Some(BackendKind::NativeThreads)
        );
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::VirtualTime));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::default(), BackendKind::VirtualTime);
        assert_eq!(BackendKind::NativeThreads.to_string(), "native");
    }

    #[test]
    fn code_cache_charges_translation_once_and_dispatch_until_linked() {
        let config = DbmConfig {
            translation_cost: 100,
            dispatch_cost: 7,
            link_threshold: 2,
            ..DbmConfig::default()
        };
        let mut cache = CodeCache::new();
        assert_eq!(cache.account_block(0x40, &config), (107, true));
        assert_eq!(cache.account_block(0x40, &config), (7, false));
        assert_eq!(cache.account_block(0x40, &config), (0, false), "linked");
    }

    #[test]
    fn batched_charges_equal_per_execution_charges() {
        let config = DbmConfig {
            translation_cost: 100,
            dispatch_cost: 7,
            link_threshold: 5,
            ..DbmConfig::default()
        };
        // Replaying a batch must charge exactly what the same executions
        // charged one at a time — including the partially-linked window.
        for (warmup, batch) in [(0u64, 3u64), (2, 9), (5, 4), (9, 2)] {
            let mut live = CodeCache::new();
            for _ in 0..warmup {
                let _ = live.account_block(0x40, &config);
            }
            let mut replayed = live.clone();
            let mut per_exec = 0;
            for _ in 0..batch {
                per_exec += live.account_block(0x40, &config).0;
            }
            let (batched, _) = replayed.charge_executions(0x40, batch, &config);
            assert_eq!(batched, per_exec, "warmup {warmup}, batch {batch}");
            assert_eq!(replayed.exec_counts[&0x40], live.exec_counts[&0x40]);
        }
    }

    #[test]
    fn modelled_cycles_take_the_lane_makespan() {
        let results: Vec<ChunkResult> = [300u64, 100, 200]
            .iter()
            .map(|&cycles| {
                let mut cpu = Cpu::new();
                cpu.cycles = cycles;
                ChunkResult { cpu, exit_pc: 0 }
            })
            .collect();
        // Three chunks over three lanes: makespan is the largest chunk.
        assert_eq!(modelled_parallel_cycles(3, &results), 300);
        // One lane: everything serialises.
        assert_eq!(modelled_parallel_cycles(1, &results), 600);
    }
}
