//! Adaptive execution: a per-loop tuner that decides, invocation by
//! invocation, whether a parallelisable loop should actually run in
//! parallel and with how many chunks.
//!
//! The static planner (iteration counting, bounds checks, the
//! `min_iterations_per_thread` gate) answers *may this loop run in
//! parallel*; it cannot answer *does parallelism pay for itself on this
//! host*. Loops with small bodies or invocations dominated by thread
//! fan-out and overlay merge can run slower than sequential execution —
//! that is exactly the wall-clock gap this module closes. The tuner keeps,
//! per loop, an EWMA ([`janus_obs::ewma`]) of measured nanoseconds per
//! iteration for every *arm* it has tried — sequential execution, or
//! parallel execution with a particular chunk count — plus a model-based
//! sequential estimate (modelled cycles per iteration × a globally
//! calibrated nanoseconds-per-cycle pace) for loops it has never run
//! sequentially. Decisions compare arms per iteration:
//!
//! * **Cold start is parallel-optimistic**: until the primary parallel arm
//!   (one chunk per configured thread) has [`MIN_SAMPLES`] measurements,
//!   the tuner keeps the planner's choice. Adaptation only ever *removes*
//!   unprofitable parallelism; it never denies a loop its first chance.
//! * **Switching needs conviction**: a challenger arm must beat the
//!   incumbent by the [`HYSTERESIS`] margin (≥15% faster) to displace it,
//!   so measurement noise cannot make the decision flap.
//! * **Probes keep the picture fresh**: every [`PROBE_PERIOD`] invocations
//!   an unmeasured candidate chunk count gets one try, and a loop settled
//!   on sequential execution re-tries parallel every [`REPROBE_SEQ`]
//!   invocations — a loop whose behaviour changes mid-run is re-detected.
//!   Probe invocations never update the incumbent decision directly; only
//!   their measurements (folded into the arms) can.
//!
//! Everything here is wall-time-only policy: guest results are identical
//! whichever arm runs, and with adaptation off the tuner is never
//! constructed. The tuner itself is deliberately free of clocks — callers
//! pass measured nanoseconds in — which is what makes the decision logic
//! unit-testable with synthetic timings.

use janus_obs::ewma::Ewma;
use std::collections::HashMap;

/// Measurements an arm needs before its estimate is trusted for decisions.
pub(crate) const MIN_SAMPLES: u64 = 2;
/// A challenger must be at least this much faster (ratio of per-iteration
/// estimates) to displace the incumbent arm.
pub(crate) const HYSTERESIS: f64 = 0.85;
/// Invocations between probes of unmeasured candidate chunk counts.
pub(crate) const PROBE_PERIOD: u64 = 16;
/// Invocations between parallel re-probes once a loop settled on
/// sequential execution.
pub(crate) const REPROBE_SEQ: u64 = 32;
/// Arm key for sequential execution (parallel arms are keyed by their
/// chunk count, which is always ≥ 1).
const SEQ_ARM: u32 = 0;

/// What the tuner decided for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneDecision {
    /// Run the invocation sequentially on the coordinating thread.
    Sequential,
    /// Run the invocation in parallel, split into `chunks` chunks.
    Parallel {
        /// Number of chunks to split the iteration space into.
        chunks: u32,
    },
}

/// One tuner decision plus the evidence behind it, for observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneOutcome {
    /// The decision to act on.
    pub decision: TuneDecision,
    /// Predicted wall nanoseconds for the chosen arm at this iteration
    /// count, when the tuner had evidence to predict from.
    pub predicted_nanos: Option<u64>,
    /// Whether this invocation is a probe of an unmeasured arm rather than
    /// the incumbent choice.
    pub probe: bool,
}

/// Per-loop adaptive state: measured arms, the model-based sequential
/// fallback and the incumbent decision.
#[derive(Debug, Default)]
struct LoopTune {
    /// Parallel-eligible invocations seen (decisions asked).
    invocations: u64,
    /// Measured nanoseconds per iteration, per arm ([`SEQ_ARM`] or a chunk
    /// count).
    arms: HashMap<u32, Ewma>,
    /// Modelled cycles per iteration of the loop body — the bridge to a
    /// sequential estimate for loops never run sequentially.
    cycles_per_iter: Ewma,
    /// The settled decision, once the primary arm has enough evidence.
    decision: Option<TuneDecision>,
    /// Invocations since the last probe.
    since_probe: u64,
}

impl LoopTune {
    /// Measured per-iteration estimate of an arm, requiring [`MIN_SAMPLES`].
    fn arm_estimate(&self, arm: u32) -> Option<f64> {
        self.arms
            .get(&arm)
            .filter(|e| e.samples() >= MIN_SAMPLES)
            .and_then(Ewma::value)
    }

    /// Sequential per-iteration estimate: measured when available, the
    /// cycles×pace model otherwise.
    fn sequential_estimate(&self, pace: &Ewma) -> Option<f64> {
        self.arm_estimate(SEQ_ARM).or_else(|| {
            let cycles = self.cycles_per_iter.value()?;
            let pace = pace.value()?;
            Some(cycles * pace)
        })
    }
}

/// The adaptive-execution tuner: per-loop arm statistics plus one global
/// pace estimator (nanoseconds of wall time per modelled sequential cycle)
/// calibrated from the run's own sequential regions.
#[derive(Debug, Default)]
pub struct Tuner {
    pace: Ewma,
    loops: HashMap<usize, LoopTune>,
}

impl Tuner {
    /// A fresh tuner with no evidence (every loop starts
    /// parallel-optimistic).
    #[must_use]
    pub fn new() -> Tuner {
        Tuner::default()
    }

    /// Candidate chunk counts for a loop under `threads` configured worker
    /// threads: the thread count itself, half of it (less fan-out/merge
    /// overhead) and double it (better load balance), deduplicated.
    fn candidates(threads: u32) -> impl Iterator<Item = u32> {
        let threads = threads.max(1);
        [threads, (threads / 2).max(1), threads * 2]
            .into_iter()
            .enumerate()
            .filter(move |&(i, c)| {
                // Keep the first occurrence of each distinct count.
                [threads, (threads / 2).max(1), threads * 2]
                    .iter()
                    .position(|&other| other == c)
                    == Some(i)
            })
            .map(|(_, c)| c)
    }

    /// Folds a wall-time observation of a sequential run of `loop_id` into
    /// its sequential arm.
    pub fn observe_sequential(&mut self, loop_id: usize, iterations: u64, wall_nanos: u64) {
        if iterations == 0 {
            return;
        }
        let lt = self.loops.entry(loop_id).or_default();
        lt.arms
            .entry(SEQ_ARM)
            .or_default()
            .observe(wall_nanos as f64 / iterations as f64);
    }

    /// Folds a wall-time observation of a parallel run of `loop_id` (split
    /// into `chunks`) into that arm, and the chunks' total modelled cycles
    /// into the loop's cycles-per-iteration model.
    pub fn observe_parallel(
        &mut self,
        loop_id: usize,
        chunks: u32,
        iterations: u64,
        wall_nanos: u64,
        chunk_cycles: u64,
    ) {
        if iterations == 0 {
            return;
        }
        let lt = self.loops.entry(loop_id).or_default();
        lt.arms
            .entry(chunks.max(1))
            .or_default()
            .observe(wall_nanos as f64 / iterations as f64);
        lt.cycles_per_iter
            .observe(chunk_cycles as f64 / iterations as f64);
    }

    /// Calibrates the global pace (wall nanoseconds per modelled sequential
    /// cycle) from a stretch of sequential execution. Callers should only
    /// feed stretches long enough to dominate timer noise.
    pub fn observe_pace(&mut self, sequential_cycles: u64, wall_nanos: u64) {
        if sequential_cycles == 0 {
            return;
        }
        self.pace
            .observe(wall_nanos as f64 / sequential_cycles as f64);
    }

    /// Samples folded into the global pace estimator.
    #[must_use]
    pub fn pace_samples(&self) -> u64 {
        self.pace.samples()
    }

    /// Decides how one invocation of `loop_id` with `iterations` iterations
    /// should run under `threads` configured worker threads.
    pub fn decide(&mut self, loop_id: usize, iterations: u64, threads: u32) -> TuneOutcome {
        let primary = threads.max(1);
        let pace = self.pace;
        let lt = self.loops.entry(loop_id).or_default();
        lt.invocations += 1;
        lt.since_probe += 1;
        let predict = |est: Option<f64>| est.map(|e| (e * iterations as f64) as u64);

        // Cold start: trust the planner until the primary parallel arm has
        // real evidence.
        let Some(primary_est) = lt.arm_estimate(primary) else {
            return TuneOutcome {
                decision: TuneDecision::Parallel { chunks: primary },
                predicted_nanos: None,
                probe: false,
            };
        };

        // Settle or challenge the incumbent. Arms compete on per-iteration
        // estimates; a challenger needs a HYSTERESIS-sized margin.
        let seq_est = lt.sequential_estimate(&pace);
        let best_parallel = Tuner::candidates(primary)
            .filter_map(|c| lt.arm_estimate(c).map(|e| (c, e)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((primary, primary_est));
        // First settled decision: straight comparison, no hysteresis —
        // there is no incumbent to protect yet.
        let incumbent = lt.decision.unwrap_or(match seq_est {
            Some(seq) if seq < best_parallel.1 => TuneDecision::Sequential,
            _ => TuneDecision::Parallel {
                chunks: best_parallel.0,
            },
        });
        let incumbent_est = match incumbent {
            TuneDecision::Sequential => seq_est,
            TuneDecision::Parallel { chunks } => lt.arm_estimate(chunks),
        };
        let decision = match (incumbent, incumbent_est) {
            (_, None) => incumbent,
            (TuneDecision::Sequential, Some(inc)) => {
                if best_parallel.1 < inc * HYSTERESIS {
                    TuneDecision::Parallel {
                        chunks: best_parallel.0,
                    }
                } else {
                    incumbent
                }
            }
            (TuneDecision::Parallel { chunks }, Some(inc)) => {
                if seq_est.is_some_and(|seq| seq < inc * HYSTERESIS)
                    && seq_est.is_some_and(|seq| seq < best_parallel.1 * HYSTERESIS)
                {
                    TuneDecision::Sequential
                } else if best_parallel.0 != chunks && best_parallel.1 < inc * HYSTERESIS {
                    TuneDecision::Parallel {
                        chunks: best_parallel.0,
                    }
                } else {
                    incumbent
                }
            }
        };
        lt.decision = Some(decision);

        // Probe unmeasured arms on a fixed cadence so the incumbent keeps
        // being tested against fresh evidence. Probes run instead of the
        // incumbent for one invocation but do not overwrite the settled
        // decision — only their measurements can, via the arms.
        if lt.since_probe >= PROBE_PERIOD {
            if let Some(unmeasured) = Tuner::candidates(primary)
                .find(|&c| lt.arms.get(&c).is_none_or(|e| e.samples() < MIN_SAMPLES))
            {
                lt.since_probe = 0;
                return TuneOutcome {
                    decision: TuneDecision::Parallel { chunks: unmeasured },
                    predicted_nanos: predict(lt.arm_estimate(unmeasured)),
                    probe: true,
                };
            }
        }
        if decision == TuneDecision::Sequential && lt.since_probe >= REPROBE_SEQ {
            lt.since_probe = 0;
            return TuneOutcome {
                decision: TuneDecision::Parallel {
                    chunks: best_parallel.0,
                },
                predicted_nanos: predict(Some(best_parallel.1)),
                probe: true,
            };
        }

        let predicted = match decision {
            TuneDecision::Sequential => seq_est,
            TuneDecision::Parallel { chunks } => lt.arm_estimate(chunks),
        };
        TuneOutcome {
            decision,
            predicted_nanos: predict(predicted),
            probe: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: usize = 7;
    const THREADS: u32 = 4;

    fn parallel(chunks: u32) -> TuneDecision {
        TuneDecision::Parallel { chunks }
    }

    #[test]
    fn cold_start_is_parallel_optimistic() {
        let mut t = Tuner::new();
        // No evidence at all: the planner's parallel choice stands, and no
        // prediction is invented.
        let out = t.decide(LOOP, 1000, THREADS);
        assert_eq!(out.decision, parallel(THREADS));
        assert_eq!(out.predicted_nanos, None);
        assert!(!out.probe);
        // One sample is still below MIN_SAMPLES: stay optimistic.
        t.observe_parallel(LOOP, THREADS, 1000, 50_000, 100_000);
        assert_eq!(t.decide(LOOP, 1000, THREADS).decision, parallel(THREADS));
    }

    #[test]
    fn regression_flips_to_sequential_and_recovers() {
        let mut t = Tuner::new();
        // Pace: 1 nano per modelled cycle, well calibrated.
        t.observe_pace(1_000_000, 1_000_000);
        // The loop body models 100 cycles/iter ⇒ sequential ≈ 100 ns/iter,
        // but parallel runs measure 250 ns/iter: parallelism regresses this
        // loop 2.5×.
        for _ in 0..3 {
            t.observe_parallel(LOOP, THREADS, 1000, 250_000, 100_000);
        }
        let out = t.decide(LOOP, 1000, THREADS);
        assert_eq!(out.decision, TuneDecision::Sequential);
        assert_eq!(out.predicted_nanos, Some(100_000), "cycles × pace × iters");
        // Sequential measurements confirm the model; the decision holds.
        t.observe_sequential(LOOP, 1000, 110_000);
        t.observe_sequential(LOOP, 1000, 110_000);
        assert_eq!(
            t.decide(LOOP, 1000, THREADS).decision,
            TuneDecision::Sequential
        );
        // The workload changes: parallel now wins big. After fresh parallel
        // evidence (e.g. from a re-probe) the tuner flips back.
        for _ in 0..8 {
            t.observe_parallel(LOOP, THREADS, 1000, 20_000, 100_000);
        }
        assert_eq!(t.decide(LOOP, 1000, THREADS).decision, parallel(THREADS));
    }

    #[test]
    fn hysteresis_does_not_flap_on_noise() {
        let mut t = Tuner::new();
        // Sequential and parallel within 10% of each other — inside the
        // hysteresis band. Whoever settles first must keep the decision.
        for _ in 0..3 {
            t.observe_parallel(LOOP, THREADS, 1000, 100_000, 100_000);
        }
        t.observe_sequential(LOOP, 1000, 95_000);
        t.observe_sequential(LOOP, 1000, 95_000);
        let first = t.decide(LOOP, 1000, THREADS).decision;
        // Alternate slightly-better measurements for each side; the
        // decision must never change.
        for i in 0..40 {
            if i % 2 == 0 {
                t.observe_sequential(LOOP, 1000, 92_000);
            } else {
                t.observe_parallel(LOOP, THREADS, 1000, 97_000, 100_000);
            }
            let out = t.decide(LOOP, 1000, THREADS);
            if !out.probe {
                assert_eq!(out.decision, first, "flapped at step {i}");
            }
        }
    }

    #[test]
    fn probes_try_unmeasured_chunk_counts_without_unsettling_the_incumbent() {
        let mut t = Tuner::new();
        for _ in 0..MIN_SAMPLES {
            t.observe_parallel(LOOP, THREADS, 1000, 50_000, 100_000);
        }
        let mut probed = Vec::new();
        for _ in 0..2 * PROBE_PERIOD + 2 {
            let out = t.decide(LOOP, 1000, THREADS);
            if out.probe {
                probed.push(out.decision);
                // A probe still proposes a concrete parallel plan.
                assert!(matches!(out.decision, TuneDecision::Parallel { .. }));
            } else {
                assert_eq!(out.decision, parallel(THREADS), "incumbent unsettled");
            }
        }
        assert!(
            !probed.is_empty(),
            "PROBE_PERIOD invocations must trigger a probe of 2 or 8 chunks"
        );
        assert!(probed.iter().all(|d| *d != parallel(THREADS)));
    }

    #[test]
    fn settled_sequential_reprobes_parallel_eventually() {
        let mut t = Tuner::new();
        for _ in 0..3 {
            t.observe_parallel(LOOP, THREADS, 1000, 300_000, 100_000);
        }
        for c in [(THREADS / 2).max(1), THREADS * 2] {
            for _ in 0..MIN_SAMPLES {
                t.observe_parallel(LOOP, c, 1000, 300_000, 100_000);
            }
        }
        t.observe_sequential(LOOP, 1000, 100_000);
        t.observe_sequential(LOOP, 1000, 100_000);
        assert_eq!(
            t.decide(LOOP, 1000, THREADS).decision,
            TuneDecision::Sequential
        );
        let mut saw_parallel_probe = false;
        for _ in 0..2 * REPROBE_SEQ {
            let out = t.decide(LOOP, 1000, THREADS);
            if out.probe {
                saw_parallel_probe |= matches!(out.decision, TuneDecision::Parallel { .. });
            }
        }
        assert!(saw_parallel_probe, "sequential loops must re-try parallel");
    }

    #[test]
    fn virtual_time_measurements_keep_parallel_execution() {
        // Under the virtual-time backend batch wall time is 0, so the
        // parallel arm estimates 0 ns/iter and always wins: adaptation is a
        // no-op there by construction.
        let mut t = Tuner::new();
        t.observe_pace(1_000_000, 1_000_000);
        for _ in 0..5 {
            t.observe_parallel(LOOP, THREADS, 1000, 0, 100_000);
        }
        let out = t.decide(LOOP, 1000, THREADS);
        assert_eq!(out.decision, parallel(THREADS));
    }

    #[test]
    fn candidates_deduplicate() {
        let c: Vec<u32> = Tuner::candidates(1).collect();
        assert_eq!(c, vec![1, 2]);
        let c: Vec<u32> = Tuner::candidates(4).collect();
        assert_eq!(c, vec![4, 2, 8]);
    }
}
