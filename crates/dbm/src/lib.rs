//! # janus-dbm — the dynamic binary modifier and parallel runtime
//!
//! This crate is the reproduction's counterpart of the paper's DynamoRIO
//! client plus runtime (sections II-A2 and II-E). It executes a guest
//! process under dynamic binary modification control:
//!
//! * the **rewrite-rule interpreter** looks up every newly reached basic
//!   block in the rewrite schedule's hash index and applies the attached
//!   handlers (loop-bound updates, stack redirection, bounds checks,
//!   transaction start/finish) before execution continues from the code
//!   cache;
//! * the **code cache model** charges a translation cost the first time a
//!   block is reached, a dispatch cost until the block becomes hot enough to
//!   be linked (trace optimisation), and an indirect-branch lookup penalty —
//!   this is what produces the "DynamoRIO only" overhead bar of Figure 7;
//! * the **parallel loop runtime** implements `LOOP_INIT`/`LOOP_FINISH`:
//!   when the main thread reaches a parallelised loop header it verifies any
//!   `MEM_BOUNDS_CHECK` rules, splits the iteration space over a pool of
//!   guest threads (each with its own register context, private stack and
//!   privatised reduction accumulators), rewrites each thread's loop bound,
//!   runs the threads and merges their contexts back;
//! * a **just-in-time software transactional memory** wraps dynamically
//!   discovered code (shared-library calls) in value-validated transactions,
//!   exactly as Janus does for the `pow` call in bwaves.
//!
//! ## Execution backends
//!
//! Chunk execution is routed through the [`ExecutionBackend`] trait, selected
//! by [`DbmConfig::backend`]:
//!
//! * [`VirtualTimeBackend`] (the default) executes chunks deterministically,
//!   one after another on the coordinating thread, and reports *virtual*
//!   parallel time: each chunk's cycle count is charged to the least-loaded
//!   of `threads` modelled worker lanes ([`janus_spec::LaneSet`]) and the
//!   busiest lane's clock is the invocation's parallel time. All
//!   shared-memory effects are real (the chunks operate on the same guest
//!   address space); only the notion of time is simulated. This backend is
//!   bit-reproducible across runs and machines — it is what Figures 7, 8, 9,
//!   11 and 12 are built from.
//! * [`NativeThreadsBackend`] runs the chunks of each parallel-loop
//!   invocation on real `std::thread` workers. Every chunk executes against a
//!   [`janus_vm::CowMemory`] view — a private write overlay over the shared
//!   read-only memory image — and the overlays are merged back in chunk order
//!   after the workers join, which reproduces the exact memory image the
//!   virtual-time backend produces. Modelled cycles are charged through the
//!   same worker-lane code path (so cycle counts remain deterministic and
//!   comparable), while wall-clock time and the number of OS threads spawned
//!   are additionally reported in [`DbmStats::parallel_wall_nanos`] and
//!   [`DbmStats::os_threads_used`]. Speculative (`SPECULATE`) invocations
//!   race their incarnations on a Block-STM worker pool
//!   ([`janus_spec::run_speculative_pooled`], one OS thread per lane) over a
//!   read-only view of guest memory, then replay the deterministic
//!   coordinator engine in commit order for the modelled statistics and the
//!   commit, cross-checking the two serial-equivalent final images — so
//!   speculative reports stay bit-identical to the virtual-time backend.
//!   Only loops whose schedule carries `TX_START` rules (STM-wrapped
//!   shared-library calls, i.e. potential cross-chunk dependences)
//!   conservatively take the sequential chunk path so guest results stay
//!   identical by construction.
//!
//! Pick the virtual-time backend to reproduce the paper's figures, and the
//! native-threads backend to exercise real parallel hardware (thread-scaling
//! runs, wall-clock measurements). Both produce identical guest memory
//! images and program outputs for every workload in the suite; the
//! cross-backend equivalence test in `janus-core` asserts exactly that via
//! [`DbmRunResult::memory_digest`].
//!
//! The resulting [`CycleBreakdown`] always carries modelled cycles;
//! wall-clock measurements live beside it in [`DbmStats`] so virtual-time
//! figures stay bit-identical regardless of backend availability.
//!
//! `docs/ARCHITECTURE.md` at the repository root places this crate in the
//! whole pipeline and spells out why modelled results are invariant across
//! the two backends.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod meter;
mod runtime;
mod stm;
mod tuner;

pub use backend::{
    BackendKind, BatchOutcome, ExecutionBackend, NativeThreadsBackend, VirtualTimeBackend,
};
pub use runtime::{Dbm, DbmRunResult, PreparedDbm, SideSpec, VarSpec};
pub use stm::TxStats;
pub use tuner::{TuneDecision, TuneOutcome, Tuner};

use std::fmt;

/// Cost knobs of the just-in-time software transactional memory (the
/// JudoSTM-style `TX_START`/`TX_FINISH` path wrapping shared-library calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmCosts {
    /// Extra cycles per speculative (transactional) memory read.
    pub read: u64,
    /// Extra cycles per speculative (transactional) memory write.
    pub write: u64,
    /// Cycles per buffered entry validated/committed at transaction end.
    pub commit: u64,
}

impl Default for StmCosts {
    fn default() -> Self {
        StmCosts {
            read: 8,
            write: 14,
            commit: 16,
        }
    }
}

/// Cost knobs of the Block-STM-style iteration-level speculation engine
/// (`janus-spec`), plus its livelock guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecCosts {
    /// Extra cycles per tracked read in a speculative (DOACROSS) iteration.
    pub read: u64,
    /// Extra cycles per buffered write in a speculative iteration.
    pub write: u64,
    /// Cycles per read-set entry re-resolved when an iteration validates.
    pub validate: u64,
    /// Cycles charged per speculative abort (estimate conversion, re-dispatch).
    pub abort: u64,
    /// Task budget multiplier before a speculative invocation gives up and
    /// re-runs sequentially (livelock guard for densely dependent loops).
    pub max_task_factor: u32,
}

impl Default for SpecCosts {
    fn default() -> Self {
        SpecCosts {
            read: 6,
            write: 10,
            validate: 4,
            abort: 60,
            max_task_factor: 64,
        }
    }
}

/// How the native-threads backend commits a speculative (`SPECULATE`)
/// invocation once the racing Block-STM pool has converged.
///
/// The virtual-time backend always runs the deterministic coordinator (it
/// has no racing pool), so this knob only changes behaviour under
/// [`BackendKind::NativeThreads`]. Either way the committed memory image is
/// the serial-equivalent one — the equivalence test in `janus-core` asserts
/// identical memory digests between the two modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpecCommitMode {
    /// Race the pool for wall-clock speed, then replay the deterministic
    /// coordinator in commit order and report *its* modelled cycles and
    /// speculation counters (bit-identical to the virtual-time backend),
    /// cross-checking the two serial-equivalent images. The default: every
    /// figure and table is built from this mode.
    #[default]
    Deterministic,
    /// Commit the racing pool's converged image directly and skip the
    /// deterministic replay — pure wall-clock mode for callers (serving
    /// batches, latency-sensitive jobs) that do not consume modelled
    /// figures. Guest results are unchanged; speculation counters describe
    /// the actual race (nondeterministic) and modelled parallel cycles are
    /// not charged for the invocation, so cycle totals are not comparable
    /// with `Deterministic` runs. A pool that gives up ([`janus_spec::SpecError`])
    /// still falls back to the deterministic engine, which classifies
    /// genuine faults exactly.
    RacedImage,
}

impl SpecCommitMode {
    /// Stable machine-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpecCommitMode::Deterministic => "deterministic",
            SpecCommitMode::RacedImage => "raced-image",
        }
    }
}

/// Configuration of the dynamic binary modifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbmConfig {
    /// Number of guest threads used for parallelised loops.
    pub threads: u32,
    /// Which [`ExecutionBackend`] runs parallel-loop chunks.
    pub backend: BackendKind,
    /// Allow dynamic-DOALL loops: evaluate `MEM_BOUNDS_CHECK` rules and run
    /// shared-library calls under the STM. When `false`, only rules for
    /// statically proven loops are honoured.
    pub enable_runtime_checks: bool,
    /// Honour `SPECULATE` rules: run may-dependent loops under the
    /// Block-STM-style iteration-level speculation engine (`janus-spec`).
    /// When `false`, speculative loops fall back to sequential execution.
    pub enable_speculation: bool,
    /// Cycles charged the first time a basic block is copied into the code
    /// cache (decode + modify + encode).
    pub translation_cost: u64,
    /// Cycles charged per block execution until the block is linked into a
    /// trace.
    pub dispatch_cost: u64,
    /// Number of executions after which a block counts as linked (trace
    /// optimisation removes its dispatch overhead).
    pub link_threshold: u64,
    /// Extra cycles charged for every indirect branch, call or return that
    /// must go through the DBM's target lookup.
    pub indirect_lookup_cost: u64,
    /// Cycles charged per thread to initialise a parallel loop (wake from the
    /// thread pool, copy initial context).
    pub loop_init_cost: u64,
    /// Cycles charged per thread to finish a parallel loop (barrier + merge).
    pub loop_finish_cost: u64,
    /// Cycles charged per array-bounds-check pair per loop invocation.
    pub bounds_check_cost: u64,
    /// Cost knobs of the shared-library-call STM.
    pub stm: StmCosts,
    /// Cost knobs of the iteration-level speculation engine.
    pub spec: SpecCosts,
    /// How the native-threads backend commits speculative invocations:
    /// deterministic replay (default; modelled figures stay backend-
    /// invariant) or the racing pool's image directly (pure wall-clock
    /// mode). Ignored by the virtual-time backend.
    pub spec_commit: SpecCommitMode,
    /// Minimum iterations per thread below which a loop invocation is run
    /// sequentially (parallelisation would not be profitable).
    pub min_iterations_per_thread: u64,
    /// Abort execution after this many virtual cycles.
    pub cycle_limit: u64,
    /// Adaptive execution: let a per-loop [`Tuner`] pick sequential vs
    /// parallel execution and the chunk count from measured wall time, so no
    /// loop keeps paying for parallelism that does not pay for itself.
    /// Wall-time-only — guest results are identical either way, and with the
    /// knob off (the default) planning is untouched, keeping modelled
    /// figures bit-identical to previous releases. Defaults to the
    /// `JANUS_ADAPTIVE` environment variable (`1`/`true` to enable).
    pub adaptive: bool,
}

impl Default for DbmConfig {
    /// The default configuration. The backend honours the `JANUS_BACKEND`
    /// environment variable (`virtual` / `native`) so a whole test or bench
    /// run can be switched without code changes; everything else is fixed.
    fn default() -> Self {
        DbmConfig {
            threads: 8,
            backend: BackendKind::from_env(),
            enable_runtime_checks: true,
            enable_speculation: true,
            translation_cost: 350,
            dispatch_cost: 3,
            link_threshold: 16,
            indirect_lookup_cost: 12,
            loop_init_cost: 2_200,
            loop_finish_cost: 1_400,
            bounds_check_cost: 35,
            stm: StmCosts::default(),
            spec: SpecCosts::default(),
            spec_commit: SpecCommitMode::default(),
            min_iterations_per_thread: 1,
            cycle_limit: 200_000_000_000,
            adaptive: adaptive_from_env(),
        }
    }
}

/// Whether the `JANUS_ADAPTIVE` environment variable asks for adaptive
/// execution (`1`, `true`, `yes` or `on`, case-insensitive). Unrecognised
/// values fall back to *off* — the same lenient default `BackendKind::
/// from_env` applies to `JANUS_BACKEND` — but loudly: a value like
/// `JANUS_ADAPTIVE=2` is almost certainly a typo for "on", and silently
/// running the static policy would invalidate whatever the caller was
/// measuring.
fn adaptive_from_env() -> bool {
    match adaptive_from_value(std::env::var("JANUS_ADAPTIVE").ok().as_deref()) {
        Ok(on) => on,
        Err(value) => {
            eprintln!(
                "janus-dbm: unrecognised JANUS_ADAPTIVE value {value:?} \
                 (expected 1/true/yes/on or 0/false/no/off); adaptive \
                 execution stays OFF"
            );
            false
        }
    }
}

/// The pure decision behind [`adaptive_from_env`]: `Ok(true)` for truthy
/// spellings, `Ok(false)` for unset/empty/falsy spellings, and
/// `Err(original_value)` for anything unrecognised so the caller can warn.
fn adaptive_from_value(value: Option<&str>) -> std::result::Result<bool, String> {
    let Some(raw) = value else { return Ok(false) };
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Ok(true),
        "" | "0" | "false" | "no" | "off" => Ok(false),
        _ => Err(raw.to_string()),
    }
}

impl DbmConfig {
    /// A configuration with `threads` worker threads and defaults otherwise.
    #[must_use]
    pub fn with_threads(threads: u32) -> DbmConfig {
        DbmConfig {
            threads,
            ..DbmConfig::default()
        }
    }

    /// A configuration with an explicit execution backend and defaults
    /// otherwise.
    #[must_use]
    pub fn with_backend(backend: BackendKind) -> DbmConfig {
        DbmConfig {
            backend,
            ..DbmConfig::default()
        }
    }
}

/// Virtual-cycle breakdown of one execution, mirroring Figure 8 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles spent executing sequential (non-parallelised) guest code.
    pub sequential: u64,
    /// Virtual cycles of parallel regions (maximum across the threads of each
    /// invocation, summed over invocations).
    pub parallel: u64,
    /// Thread start/finish overhead of parallel loops.
    pub init_finish: u64,
    /// Dynamic translation overhead (code-cache population, dispatch,
    /// indirect-branch lookups).
    pub translation: u64,
    /// Runtime array-bounds checks.
    pub checks: u64,
    /// Software-transactional-memory overhead (tracking, validation, commit).
    pub stm: u64,
}

impl CycleBreakdown {
    /// Total virtual execution time.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sequential
            + self.parallel
            + self.init_finish
            + self.translation
            + self.checks
            + self.stm
    }

    /// The fraction of total time spent in each category, in the order
    /// (sequential, parallel, init/finish, translation, checks, stm).
    #[must_use]
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total().max(1) as f64;
        [
            self.sequential as f64 / t,
            self.parallel as f64 / t,
            self.init_finish as f64 / t,
            self.translation as f64 / t,
            self.checks as f64 / t,
            self.stm as f64 / t,
        ]
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sequential {} | parallel {} | init/finish {} | translation {} | checks {} | stm {}",
            self.sequential,
            self.parallel,
            self.init_finish,
            self.translation,
            self.checks,
            self.stm
        )
    }
}

/// Counters describing one execution under the DBM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbmStats {
    /// Cycle breakdown by category.
    pub breakdown: CycleBreakdown,
    /// Guest instructions retired (across all threads).
    pub retired: u64,
    /// Distinct basic blocks translated into the code cache.
    pub blocks_translated: u64,
    /// Total basic-block executions.
    pub block_executions: u64,
    /// Parallel loop invocations executed in parallel.
    pub parallel_invocations: u64,
    /// Parallel-candidate invocations that fell back to sequential execution
    /// (failed bounds check or too few iterations).
    pub sequential_fallbacks: u64,
    /// Array-bounds-check pairs evaluated.
    pub bounds_checks_executed: u64,
    /// Software transactions executed.
    pub stm_transactions: u64,
    /// Software transactions aborted and re-executed.
    pub stm_aborts: u64,
    /// Speculative reads buffered by the STM.
    pub stm_reads: u64,
    /// Speculative writes buffered by the STM.
    pub stm_writes: u64,
    /// Loop invocations executed under iteration-level speculation.
    pub spec_invocations: u64,
    /// Iterations covered by speculative invocations.
    pub spec_iterations: u64,
    /// Iteration incarnations executed to completion (the excess over
    /// `spec_iterations` is conflict-driven re-execution).
    pub spec_executions: u64,
    /// Speculative aborts (failed validations, estimate stalls, retried
    /// faults).
    pub spec_aborts: u64,
    /// Validation tasks performed by the speculative engine.
    pub spec_validations: u64,
    /// Speculative invocations abandoned (task budget) and re-run
    /// sequentially.
    pub spec_fallbacks: u64,
    /// Word reads tracked by the speculation engine's multi-version views.
    pub spec_reads: u64,
    /// Word writes buffered by the speculation engine's multi-version views.
    pub spec_writes: u64,
    /// Largest number of OS worker threads spawned for any single
    /// parallel-loop invocation. Stays at 0 under the virtual-time backend
    /// (and for runs with no parallel invocations); a value above 1 is the
    /// observable proof that the native-threads backend fanned work out
    /// across real threads.
    pub os_threads_used: u64,
    /// Wall-clock nanoseconds spent inside parallel-region execution
    /// (chunk batches and speculative invocations), summed over invocations.
    /// Only the native-threads backend measures this; the virtual-time
    /// backend reports 0 so its output stays bit-reproducible.
    pub parallel_wall_nanos: u64,
    /// Adaptive-tuner decisions that chose (or kept) parallel execution.
    /// Stays at 0 when [`DbmConfig::adaptive`] is off.
    pub tune_parallel_decisions: u64,
    /// Adaptive-tuner decisions that sent an otherwise-parallelisable
    /// invocation down the sequential path because parallelism was not
    /// paying for itself. Not counted in
    /// [`DbmStats::sequential_fallbacks`], which keeps its historical
    /// meaning (failed bounds checks / too few iterations).
    pub tune_sequential_decisions: u64,
    /// Mapped guest pages the page-aware overlay merge skipped because no
    /// chunk dirtied them, summed over parallel invocations. 0 under the
    /// virtual-time backend (no overlays to merge).
    pub merge_pages_skipped: u64,
    /// Pages the overlay merge actually visited, summed over invocations.
    pub merge_pages_merged: u64,
}

impl DbmStats {
    /// Per-iteration retries of the speculative engine: completed
    /// re-executions beyond each iteration's first incarnation.
    #[must_use]
    pub fn spec_retries(&self) -> u64 {
        self.spec_executions.saturating_sub(self.spec_iterations)
    }

    /// Speculative aborts per completed execution (0 when nothing ran
    /// speculatively).
    #[must_use]
    pub fn spec_abort_rate(&self) -> f64 {
        if self.spec_executions == 0 {
            0.0
        } else {
            self.spec_aborts as f64 / self.spec_executions as f64
        }
    }
}

/// Errors raised by the dynamic binary modifier.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DbmError {
    /// The underlying guest execution faulted.
    Vm(janus_vm::VmError),
    /// A rewrite rule was malformed or referred to state the DBM cannot
    /// locate.
    BadRule {
        /// Description of the problem.
        reason: String,
    },
    /// The virtual cycle limit was exceeded.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for DbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbmError::Vm(e) => write!(f, "guest execution failed: {e}"),
            DbmError::BadRule { reason } => write!(f, "bad rewrite rule: {reason}"),
            DbmError::CycleLimitExceeded { limit } => {
                write!(f, "virtual cycle limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for DbmError {}

impl From<janus_vm::VmError> for DbmError {
    fn from(e: janus_vm::VmError) -> Self {
        DbmError::Vm(e)
    }
}

/// Convenience alias for DBM results.
pub type Result<T> = std::result::Result<T, DbmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = CycleBreakdown {
            sequential: 50,
            parallel: 30,
            init_finish: 10,
            translation: 5,
            checks: 3,
            stm: 2,
        };
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!(b.to_string().contains("parallel 30"));
    }

    #[test]
    fn default_config_is_sensible() {
        let c = DbmConfig::default();
        assert_eq!(c.threads, 8);
        assert!(c.enable_runtime_checks);
        assert!(c.translation_cost > c.dispatch_cost);
        assert_eq!(DbmConfig::with_threads(4).threads, 4);
        assert_eq!(
            DbmConfig::with_backend(BackendKind::NativeThreads).backend,
            BackendKind::NativeThreads
        );
        // The grouped cost structs carry the historical default values.
        assert_eq!((c.stm.read, c.stm.write, c.stm.commit), (8, 14, 16));
        assert_eq!(
            (
                c.spec.read,
                c.spec.write,
                c.spec.validate,
                c.spec.abort,
                c.spec.max_task_factor
            ),
            (6, 10, 4, 60, 64)
        );
        // Figures are built from the deterministic replay by default.
        assert_eq!(c.spec_commit, SpecCommitMode::Deterministic);
        assert_eq!(SpecCommitMode::Deterministic.label(), "deterministic");
        assert_eq!(SpecCommitMode::RacedImage.label(), "raced-image");
    }

    #[test]
    fn adaptive_value_matrix() {
        // Truthy spellings, in every case/whitespace disguise.
        for v in ["1", "true", "yes", "on", "TRUE", " On ", "YeS"] {
            assert_eq!(adaptive_from_value(Some(v)), Ok(true), "{v:?}");
        }
        // Falsy spellings and the unset/empty cases are off without fuss.
        for v in ["0", "false", "no", "off", "OFF", " False ", ""] {
            assert_eq!(adaptive_from_value(Some(v)), Ok(false), "{v:?}");
        }
        assert_eq!(adaptive_from_value(None), Ok(false));
        // Garbage is rejected (the env wrapper warns and stays off) rather
        // than silently meaning "off": `2` is a plausible typo for "on".
        for v in ["2", "enabled", "adaptive", "-1", "tru e", "on off"] {
            assert_eq!(
                adaptive_from_value(Some(v)),
                Err(v.to_string()),
                "{v:?} must be rejected, not silently treated as off"
            );
        }
    }

    #[test]
    fn errors_convert_and_display() {
        let e: DbmError = janus_vm::VmError::BadPc { pc: 0x10 }.into();
        assert!(e.to_string().contains("guest execution failed"));
        assert!(DbmError::BadRule { reason: "x".into() }
            .to_string()
            .contains("bad rewrite rule"));
    }
}
