//! Just-in-time, word-based software transactional memory.
//!
//! Modelled on JudoSTM (lazy value-based conflict checking), as described in
//! section II-E2 of the paper: inside a transaction every heap read records
//! the value observed and every heap write is buffered. At commit the
//! recorded reads are validated against shared memory and, when they still
//! hold, the buffered writes are applied in thread order.

use janus_vm::GuestMemory;
use std::collections::HashMap;

/// Statistics of one transaction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Number of 64-bit reads tracked.
    pub reads: u64,
    /// Number of 64-bit writes buffered.
    pub writes: u64,
}

/// A transactional view over guest memory.
///
/// Reads consult the local write buffer first and otherwise record the value
/// observed in shared memory; writes are buffered until [`TxView::commit`].
#[derive(Debug)]
pub struct TxView<'a, M: GuestMemory> {
    shared: &'a mut M,
    read_log: Vec<(u64, u64)>,
    write_buffer: HashMap<u64, u64>,
    stats: TxStats,
}

impl<'a, M: GuestMemory> TxView<'a, M> {
    /// Starts a transaction over `shared`.
    pub fn new(shared: &'a mut M) -> TxView<'a, M> {
        TxView {
            shared,
            read_log: Vec::new(),
            write_buffer: HashMap::new(),
            stats: TxStats::default(),
        }
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    /// Validates the read log against shared memory.
    #[must_use]
    pub fn validate(&mut self) -> bool {
        // Split borrow: the log is only iterated while shared memory is
        // re-read, so no clone of the (hot-path) read log is needed.
        let TxView {
            shared, read_log, ..
        } = self;
        read_log
            .iter()
            .all(|(addr, value)| shared.read_u64(*addr) == *value)
    }

    /// Validates and, on success, applies the buffered writes to shared
    /// memory. Returns `false` (and applies nothing) if validation failed.
    pub fn commit(mut self) -> bool {
        if !self.validate() {
            return false;
        }
        let mut writes: Vec<(u64, u64)> = self.write_buffer.iter().map(|(a, v)| (*a, *v)).collect();
        writes.sort_unstable();
        for (addr, value) in writes {
            self.shared.write_u64(addr, value);
        }
        true
    }

    fn aligned(addr: u64) -> u64 {
        addr & !7
    }
}

impl<M: GuestMemory> GuestMemory for TxView<'_, M> {
    fn read_u8(&mut self, addr: u64) -> u8 {
        let word = Self::aligned(addr);
        let v = self.read_u64(word);
        v.to_le_bytes()[(addr - word) as usize]
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let word = Self::aligned(addr);
        let mut bytes = self.read_u64(word).to_le_bytes();
        bytes[(addr - word) as usize] = value;
        self.write_u64(word, u64::from_le_bytes(bytes));
    }

    fn read_u64(&mut self, addr: u64) -> u64 {
        let word = Self::aligned(addr);
        if word == addr {
            if let Some(v) = self.write_buffer.get(&word) {
                return *v;
            }
            let v = self.shared.read_u64(word);
            self.read_log.push((word, v));
            self.stats.reads += 1;
            v
        } else {
            // Unaligned: compose from the two covering words.
            let lo = self.read_u64(word);
            let hi = self.read_u64(word + 8);
            let shift = (addr - word) * 8;
            (lo >> shift) | (hi << (64 - shift))
        }
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let word = Self::aligned(addr);
        if word == addr {
            self.write_buffer.insert(word, value);
            self.stats.writes += 1;
        } else {
            // Unaligned store: update the covering words byte by byte.
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_vm::FlatMemory;

    #[test]
    fn reads_are_logged_and_writes_buffered_until_commit() {
        let mut shared = FlatMemory::new();
        shared.write_u64(0x1000, 7);
        let mut tx = TxView::new(&mut shared);
        assert_eq!(tx.read_u64(0x1000), 7);
        tx.write_u64(0x2000, 99);
        assert_eq!(tx.read_u64(0x2000), 99, "reads observe own writes");
        assert_eq!(tx.stats().reads, 1, "own-write read is not logged");
        assert_eq!(tx.stats().writes, 1);
        assert!(tx.commit());
        assert_eq!(shared.read_u64(0x2000), 99);
    }

    #[test]
    fn conflicting_write_by_another_thread_aborts_commit() {
        let mut shared = FlatMemory::new();
        shared.write_u64(0x1000, 7);
        let mut tx = TxView::new(&mut shared);
        let _ = tx.read_u64(0x1000);
        tx.write_u64(0x1008, 1);
        // Simulate an interleaved writer invalidating the read set.
        tx.shared.write_u64(0x1000, 8);
        assert!(!tx.validate());
        assert!(!tx.commit());
        assert_eq!(shared.read_u64(0x1008), 0, "aborted writes are discarded");
    }

    #[test]
    fn commit_with_empty_logs_succeeds() {
        let mut shared = FlatMemory::new();
        let tx = TxView::new(&mut shared);
        assert!(tx.commit());
    }

    #[test]
    fn byte_accesses_compose_through_words() {
        let mut shared = FlatMemory::new();
        shared.write_u64(0x1000, 0x1122_3344_5566_7788);
        let mut tx = TxView::new(&mut shared);
        assert_eq!(tx.read_u8(0x1001), 0x77);
        tx.write_u8(0x1001, 0xaa);
        assert_eq!(tx.read_u8(0x1001), 0xaa);
        assert!(tx.commit());
        assert_eq!(shared.read_u64(0x1000), 0x1122_3344_5566_aa88);
    }
}
