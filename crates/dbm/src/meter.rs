//! Always-on metering of DBM execution against the process-global
//! [`janus_obs::metrics`] registry.
//!
//! [`DbmConfig`](crate::DbmConfig) is `Copy`, so it cannot carry a registry
//! handle; instead every run meters into
//! [`Registry::global()`](janus_obs::metrics::global), labelled by backend.
//! Handles are registered once per backend (a `OnceLock`) and cached, so
//! the per-run cost is a batch of relaxed atomic adds at run end plus one
//! histogram sample per parallel invocation — no locks, no allocation on
//! the execution path.

use crate::{BackendKind, DbmStats};
use janus_obs::metrics::{global, Counter};
use janus_obs::Histogram;
use std::sync::{Arc, OnceLock};

/// Cached global-registry handles for one backend label.
#[derive(Debug)]
pub(crate) struct BackendMeter {
    runs: Arc<Counter>,
    run_failures: Arc<Counter>,
    guest_cycles: Arc<Counter>,
    parallel_invocations: Arc<Counter>,
    sequential_fallbacks: Arc<Counter>,
    tune_parallel: Arc<Counter>,
    tune_sequential: Arc<Counter>,
    merge_pages_skipped: Arc<Counter>,
    merge_pages_merged: Arc<Counter>,
    spec_invocations: Arc<Counter>,
    spec_executions: Arc<Counter>,
    spec_validations: Arc<Counter>,
    spec_aborts: Arc<Counter>,
    spec_retries: Arc<Counter>,
    spec_fallbacks: Arc<Counter>,
    /// Wall-clock of each parallel region (chunk batch or speculative
    /// invocation), nanoseconds. Meaningful on the native backend; the
    /// virtual backend records zeros.
    pub(crate) chunk_wall_nanos: Arc<Histogram>,
    /// End-to-end wall clock of each completed run, nanoseconds.
    run_wall_nanos: Arc<Histogram>,
}

impl BackendMeter {
    fn register(backend: BackendKind) -> BackendMeter {
        let registry = global();
        let labels: &[(&'static str, &str)] = &[("backend", backend.label())];
        BackendMeter {
            runs: registry.counter(
                "janus_dbm_runs_total",
                "Guest programs run to completion under DBM control.",
                labels,
            ),
            run_failures: registry.counter(
                "janus_dbm_run_failures_total",
                "DBM runs that ended in an error (fault or cycle limit).",
                labels,
            ),
            guest_cycles: registry.counter(
                "janus_dbm_guest_cycles_total",
                "Modelled guest cycles consumed by completed runs.",
                labels,
            ),
            parallel_invocations: registry.counter(
                "janus_dbm_parallel_invocations_total",
                "Loop invocations executed in parallel (chunked).",
                labels,
            ),
            sequential_fallbacks: registry.counter(
                "janus_dbm_sequential_fallbacks_total",
                "Parallel-candidate invocations that fell back to sequential \
                 execution (failed bounds check or too few iterations).",
                labels,
            ),
            tune_parallel: registry.counter(
                "janus_dbm_tune_parallel_decisions_total",
                "Adaptive-tuner decisions that chose or kept parallel execution.",
                labels,
            ),
            tune_sequential: registry.counter(
                "janus_dbm_tune_sequential_decisions_total",
                "Adaptive-tuner decisions that forced the sequential path.",
                labels,
            ),
            merge_pages_skipped: registry.counter(
                "janus_dbm_merge_pages_skipped_total",
                "Guest pages the page-aware overlay merge skipped untouched.",
                labels,
            ),
            merge_pages_merged: registry.counter(
                "janus_dbm_merge_pages_merged_total",
                "Guest pages the overlay merge actually visited.",
                labels,
            ),
            spec_invocations: registry.counter(
                "janus_spec_invocations_total",
                "Loop invocations executed under iteration-level speculation.",
                labels,
            ),
            spec_executions: registry.counter(
                "janus_spec_executions_total",
                "Iteration incarnations executed to completion.",
                labels,
            ),
            spec_validations: registry.counter(
                "janus_spec_validations_total",
                "Validation tasks performed by the speculative engine.",
                labels,
            ),
            spec_aborts: registry.counter(
                "janus_spec_aborts_total",
                "Speculative aborts (failed validations, estimate stalls, \
                 retried faults). Abort rate = aborts / executions.",
                labels,
            ),
            spec_retries: registry.counter(
                "janus_spec_retries_total",
                "Conflict-driven iteration re-executions beyond the first \
                 incarnation.",
                labels,
            ),
            spec_fallbacks: registry.counter(
                "janus_spec_fallbacks_total",
                "Speculative invocations abandoned and re-run sequentially.",
                labels,
            ),
            chunk_wall_nanos: registry.histogram(
                "janus_dbm_chunk_wall_nanos",
                "Wall-clock nanoseconds per parallel region (chunk batch or \
                 speculative invocation); zeros under the virtual backend.",
                labels,
            ),
            run_wall_nanos: registry.histogram(
                "janus_dbm_run_wall_nanos",
                "End-to-end wall-clock nanoseconds per completed DBM run.",
                labels,
            ),
        }
    }
}

/// The cached meter for `backend`. First call per process registers the
/// families; every later call is a static array index.
pub(crate) fn meter(backend: BackendKind) -> &'static BackendMeter {
    static METERS: OnceLock<[BackendMeter; 2]> = OnceLock::new();
    let meters = METERS.get_or_init(|| {
        [
            BackendMeter::register(BackendKind::VirtualTime),
            BackendMeter::register(BackendKind::NativeThreads),
        ]
    });
    match backend {
        BackendKind::VirtualTime => &meters[0],
        BackendKind::NativeThreads => &meters[1],
    }
}

/// Publishes one completed run's cumulative [`DbmStats`] to the global
/// registry — called exactly once, when `Dbm::run` returns `Ok`.
pub(crate) fn record_run(backend: BackendKind, stats: &DbmStats, cycles: u64, wall_nanos: u64) {
    let m = meter(backend);
    m.runs.inc();
    m.guest_cycles.add(cycles);
    m.parallel_invocations.add(stats.parallel_invocations);
    m.sequential_fallbacks.add(stats.sequential_fallbacks);
    m.tune_parallel.add(stats.tune_parallel_decisions);
    m.tune_sequential.add(stats.tune_sequential_decisions);
    m.merge_pages_skipped.add(stats.merge_pages_skipped);
    m.merge_pages_merged.add(stats.merge_pages_merged);
    m.spec_invocations.add(stats.spec_invocations);
    m.spec_executions.add(stats.spec_executions);
    m.spec_validations.add(stats.spec_validations);
    m.spec_aborts.add(stats.spec_aborts);
    m.spec_retries.add(stats.spec_retries());
    m.spec_fallbacks.add(stats.spec_fallbacks);
    m.run_wall_nanos.record(wall_nanos);
}

/// Counts a run that ended in an error.
pub(crate) fn record_run_failure(backend: BackendKind) {
    meter(backend).run_failures.inc();
}
