//! The speculative execution engine: drives execution and validation tasks
//! over the iterations of one loop invocation, re-executing only the
//! dependents of failed iterations, and accounts everything in deterministic
//! virtual time.

use crate::mv::{MvMemory, ReadOrigin, ReadResult, ReadSet};
use crate::scheduler::{LaneSet, Lanes, Scheduler, Task};
use crate::{SpecConfig, SpecError, SpecStats};
use janus_vm::{GuestMemory, PeekMemory};
use std::fmt;

/// What one incarnation of the loop body reports back to the engine.
#[derive(Debug)]
pub struct IterationRun<P> {
    /// Guest cycles the incarnation consumed.
    pub cycles: u64,
    /// Caller-defined result (e.g. the final CPU context) kept for the
    /// incarnation that ultimately validates.
    pub payload: P,
}

/// The result of one successful speculative invocation.
pub struct SpecOutcome<P> {
    /// Aggregate speculation counters.
    pub stats: SpecStats,
    /// Virtual parallel time of the invocation: the busiest lane's clock,
    /// including validation, commit and abort overheads.
    pub parallel_cycles: u64,
    /// The payload of each iteration's validated incarnation, in iteration
    /// order.
    pub payloads: Vec<P>,
    /// The committed final memory image, sorted by word address — the exact
    /// writes applied to base memory. Exposed so callers can cross-check two
    /// engines (the deterministic coordinator and the racing worker pool)
    /// against each other word for word.
    pub image: Vec<(u64, u64)>,
}

impl<P> fmt::Debug for SpecOutcome<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecOutcome")
            .field("stats", &self.stats)
            .field("parallel_cycles", &self.parallel_cycles)
            .field("payloads", &self.payloads.len())
            .field("image", &self.image.len())
            .finish()
    }
}

/// Per-iteration bookkeeping kept by the engine between tasks.
struct IterData<P> {
    read_set: ReadSet,
    payload: Option<P>,
}

impl<P> Default for IterData<P> {
    fn default() -> Self {
        IterData {
            read_set: ReadSet::default(),
            payload: None,
        }
    }
}

/// Runs `iterations` speculative loop iterations over `base` memory.
///
/// `body` executes one incarnation of one iteration against the supplied
/// [`crate::SpecView`] and reports its cycle cost plus an arbitrary payload.
/// On success the final (serial-equivalent) memory image has been committed
/// into `base` and the outcome carries per-iteration payloads plus abort and
/// retry statistics.
///
/// # Errors
///
/// Returns [`SpecError::Body`] when the body fails on *consistent* state
/// (every lower iteration validated — a genuine guest fault), and
/// [`SpecError::AbortLimit`] when the task budget is exhausted (the caller
/// should fall back to sequential execution).
pub fn run_speculative<M, P, E, F>(
    config: &SpecConfig,
    base: &mut M,
    iterations: usize,
    body: F,
) -> Result<SpecOutcome<P>, SpecError<E>>
where
    M: GuestMemory + PeekMemory,
    F: FnMut(usize, &mut crate::SpecView<'_, M>) -> Result<IterationRun<P>, E>,
{
    run_speculative_with_lanes(config, Lanes::new(config.lanes), base, iterations, body)
}

/// [`run_speculative`] with a caller-supplied [`LaneSet`].
///
/// Execution backends that maintain their own worker-lane state (e.g. to
/// correlate modelled lane occupancy with real worker threads) can pass it in
/// here; the engine is otherwise identical.
///
/// # Errors
///
/// See [`run_speculative`].
pub fn run_speculative_with_lanes<M, P, E, F, L>(
    config: &SpecConfig,
    mut lanes: L,
    base: &mut M,
    iterations: usize,
    mut body: F,
) -> Result<SpecOutcome<P>, SpecError<E>>
where
    M: GuestMemory + PeekMemory,
    F: FnMut(usize, &mut crate::SpecView<'_, M>) -> Result<IterationRun<P>, E>,
    L: LaneSet,
{
    let mut stats = SpecStats {
        iterations: iterations as u64,
        ..SpecStats::default()
    };
    if iterations == 0 {
        return Ok(SpecOutcome {
            stats,
            parallel_cycles: 0,
            payloads: Vec::new(),
            image: Vec::new(),
        });
    }

    let mv = MvMemory::new(iterations);
    let sched = Scheduler::new(iterations);
    let mut data: Vec<IterData<P>> = (0..iterations).map(|_| IterData::default()).collect();

    let max_tasks = (iterations as u64)
        .saturating_mul(u64::from(config.max_task_factor.max(2)))
        .saturating_add(64);
    let mut tasks = 0u64;

    while !sched.done() {
        tasks += 1;
        if tasks > max_tasks {
            return Err(SpecError::AbortLimit { iterations, tasks });
        }
        let Some(task) = sched.next_task() else {
            // Defensive: with the counters lowered on every state regression
            // this cannot happen; bail out rather than spin.
            return Err(SpecError::AbortLimit { iterations, tasks });
        };
        match task {
            Task::Execution {
                iteration,
                incarnation,
            } => {
                let now = lanes.next_start();
                let mut view = crate::SpecView::new(&*base, &mv, iteration, now);
                match body(iteration, &mut view) {
                    Ok(run) => {
                        let (read_set, write_buffer, blocked, vs) = view.finish();
                        stats.reads += vs.reads;
                        stats.writes += vs.writes;
                        let cost = run.cycles
                            + vs.reads * config.read_overhead
                            + vs.writes * config.write_overhead;
                        let done_at = lanes.charge(cost);
                        if let Some(on) = blocked {
                            // The incarnation read an estimate: the work is
                            // wasted, re-dispatch once `on` re-executes.
                            stats.estimate_stalls += 1;
                            stats.aborts += 1;
                            sched.abort_on_dependency(iteration, on);
                        } else {
                            stats.executions += 1;
                            stats.max_incarnation = stats.max_incarnation.max(incarnation);
                            let changed = mv.record(iteration, incarnation, &write_buffer, done_at);
                            data[iteration].read_set = read_set;
                            data[iteration].payload = Some(run.payload);
                            sched.finish_execution(iteration, changed);
                        }
                    }
                    Err(e) => {
                        drop(view);
                        // A fault on speculative state is indistinguishable
                        // from a conflict: retry once the state below has
                        // settled. A fault on consistent state is real.
                        match sched.highest_unvalidated_below(iteration) {
                            Some(dep) => {
                                stats.aborts += 1;
                                stats.faults_retried += 1;
                                lanes.charge(config.abort_cost);
                                sched.abort_on_dependency(iteration, dep);
                            }
                            None => return Err(SpecError::Body(e)),
                        }
                    }
                }
            }
            Task::Validation { iteration, .. } => {
                stats.validations += 1;
                let read_set = &data[iteration].read_set;
                let ok = validate(&mv, &*base, iteration, read_set);
                let mut cost =
                    config.validate_base_cost + read_set.len() as u64 * config.validate_read_cost;
                if !ok {
                    stats.aborts += 1;
                    cost += config.abort_cost;
                }
                let done_at = lanes.charge(cost);
                if !ok {
                    mv.convert_writes_to_estimates(iteration, done_at);
                }
                sched.finish_validation(iteration, !ok);
            }
        }
    }

    // Commit: every iteration validated, the highest version of each word is
    // the serial-equivalent final value.
    let image = mv.final_image();
    lanes.charge(config.commit_cost_per_write * image.len() as u64);
    for &(word, value) in &image {
        base.write_u64(word, value);
    }
    let mv_stats = mv.stats();
    stats.versioned_words = mv_stats.words;

    let payloads: Vec<P> = data
        .into_iter()
        .map(|d| d.payload.expect("validated iteration has a payload"))
        .collect();
    Ok(SpecOutcome {
        stats,
        parallel_cycles: lanes.makespan(),
        payloads,
        image,
    })
}

/// Lazy validation of one iteration's read set against the *current*
/// multi-version state: a read is still good when it would re-resolve to the
/// same version (read-from check) or, failing that, to the same value (value
/// check — the JudoSTM trick that forgives silent re-writes). Shared by the
/// deterministic coordinator engine and the racing worker pool.
pub(crate) fn validate<M: PeekMemory>(
    mv: &MvMemory,
    base: &M,
    iteration: usize,
    read_set: &ReadSet,
) -> bool {
    read_set.iter().all(
        |(&word, &(origin, value))| match mv.read(word, iteration, u64::MAX) {
            ReadResult::Blocked(_) => false,
            ReadResult::Versioned(now_origin, now_value) => {
                now_origin == origin || now_value == value
            }
            ReadResult::Base => origin == ReadOrigin::Base || base.peek_u64(word) == value,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecView;
    use janus_vm::FlatMemory;

    fn cfg(lanes: u32) -> SpecConfig {
        SpecConfig {
            lanes,
            ..SpecConfig::default()
        }
    }

    /// `a[i] = a[i] + 1` over disjoint words: embarrassingly parallel.
    #[test]
    fn disjoint_iterations_never_abort_and_scale() {
        let mut base = FlatMemory::new();
        for i in 0..64u64 {
            base.write_u64(0x1000 + i * 8, i);
        }
        let body = |i: usize, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
            let addr = 0x1000 + i as u64 * 8;
            let v = view.read_u64(addr);
            view.write_u64(addr, v + 1);
            Ok(IterationRun {
                cycles: 100,
                payload: (),
            })
        };
        let out = run_speculative(&cfg(8), &mut base, 64, body).unwrap();
        assert_eq!(out.stats.executions, 64);
        assert_eq!(out.stats.aborts, 0);
        for i in 0..64u64 {
            assert_eq!(base.read_u64(0x1000 + i * 8), i + 1);
        }
        // 64 iterations of 100 cycles over 8 lanes: roughly 800 cycles of
        // execution plus validation overheads; far below the serial 6400.
        assert!(
            out.parallel_cycles < 3200,
            "expected parallel scaling, got {}",
            out.parallel_cycles
        );
    }

    /// A dense chain `a[0] += 1` in every iteration: everything conflicts,
    /// the engine must still converge to the serial result.
    #[test]
    fn fully_dependent_chain_converges_to_serial() {
        let mut base = FlatMemory::new();
        base.write_u64(0x2000, 0);
        let body = |_i: usize, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
            let v = view.read_u64(0x2000);
            view.write_u64(0x2000, v + 1);
            Ok(IterationRun {
                cycles: 10,
                payload: (),
            })
        };
        let out = run_speculative(&cfg(4), &mut base, 32, body).unwrap();
        assert_eq!(base.read_u64(0x2000), 32, "serial-equivalent result");
        assert!(
            out.stats.aborts > 0,
            "a dense chain must produce aborts under 4 lanes"
        );
        assert!(out.stats.executions >= 32);
    }

    /// Sparse conflicts: iteration i touches word i % 4 — distance-4
    /// collisions inside an 8-lane window abort and retry.
    #[test]
    fn sparse_conflicts_abort_only_dependents() {
        let mut base = FlatMemory::new();
        let body = |i: usize, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
            let addr = 0x3000 + (i as u64 % 4) * 8;
            let v = view.read_u64(addr);
            view.write_u64(addr, v + i as u64);
            Ok(IterationRun {
                cycles: 50,
                payload: i,
            })
        };
        let out = run_speculative(&cfg(8), &mut base, 40, body).unwrap();
        // Serial result: word k holds sum of i with i % 4 == k.
        for k in 0..4u64 {
            let expect: u64 = (0..40u64).filter(|i| i % 4 == k).sum();
            assert_eq!(base.read_u64(0x3000 + k * 8), expect);
        }
        assert_eq!(out.payloads, (0..40).collect::<Vec<_>>());
        assert!(out.stats.retries() > 0, "conflicts must cause retries");
    }

    /// Body faults on consistent state are reported, not retried forever.
    #[test]
    fn fault_on_consistent_state_is_an_error() {
        let mut base = FlatMemory::new();
        let body = |i: usize,
                    _view: &mut SpecView<'_, FlatMemory>|
         -> Result<IterationRun<()>, &'static str> {
            if i == 0 {
                Err("boom")
            } else {
                Ok(IterationRun {
                    cycles: 1,
                    payload: (),
                })
            }
        };
        match run_speculative(&cfg(2), &mut base, 4, body) {
            Err(SpecError::Body("boom")) => {}
            other => panic!("expected body error, got {other:?}"),
        }
    }

    /// Zero iterations are a no-op.
    #[test]
    fn empty_invocation_is_trivial() {
        let mut base = FlatMemory::new();
        let out = run_speculative(
            &cfg(4),
            &mut base,
            0,
            |_, _: &mut SpecView<'_, FlatMemory>| -> Result<IterationRun<()>, ()> {
                unreachable!()
            },
        )
        .unwrap();
        assert_eq!(out.parallel_cycles, 0);
        assert!(out.payloads.is_empty());
    }
}
