//! The multi-version guest-memory store and the per-iteration speculative
//! view.
//!
//! [`MvMemory`] keeps, for every 64-bit-aligned guest word, an ordered map
//! from iteration index to the latest value that iteration's most recent
//! incarnation wrote there. A speculative read by iteration `i` observes the
//! value written by the *highest iteration below `i`* — exactly the Block-STM
//! visibility rule — with one refinement that keeps the whole engine
//! deterministic when driven from a single coordinator thread: every entry is
//! stamped with the virtual time at which its incarnation finished executing,
//! and an execution that starts at virtual time `t` only sees entries
//! recorded at or before `t`. Two iterations that would race on real hardware
//! therefore conflict in exactly the same (reproducible) way on every run.
//! The racing worker pool ([`crate::run_speculative_pooled`]) opts out of the
//! gate by reading at `t = u64::MAX`: workers observe everything recorded so
//! far, which is classic Block-STM visibility.
//!
//! When an incarnation is aborted its entries are replaced by *estimate*
//! markers: a later iteration that reads an estimate knows a lower iteration
//! is about to rewrite that word and blocks on it instead of wasting a full
//! execution that is doomed to fail validation.
//!
//! ## Thread safety
//!
//! The store is safe to share across OS worker threads: the word map is
//! sharded over [`RwLock`]s (readers of different words proceed in parallel,
//! writers only contend within a shard), per-iteration write-set bookkeeping
//! sits behind per-iteration [`Mutex`]es (the scheduler guarantees at most
//! one live incarnation per iteration, so these never contend), and the
//! counters are atomics. All operations take `&self`; driven from a single
//! thread the behaviour is bit-identical to the pre-concurrency store, which
//! is what keeps the deterministic virtual-time engine reproducible.

use janus_vm::{GuestMemory, PeekMemory};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Index of a loop iteration inside one speculative invocation.
pub type Iteration = usize;

/// The i-th re-execution of an iteration, counting from 0.
pub type Incarnation = u32;

/// Number of word-map shards. A small power of two: enough to keep eight
/// workers from serialising on one lock, small enough that collecting the
/// final image stays cheap.
const SHARDS: usize = 16;

/// Where a speculative read obtained its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOrigin {
    /// The value came from shared memory (no lower iteration had written the
    /// word when the read executed).
    Base,
    /// The value was written by a lower iteration's incarnation.
    Version {
        /// The iteration that wrote the value.
        iteration: Iteration,
        /// The incarnation of that iteration.
        incarnation: Incarnation,
    },
}

/// One multi-version entry for a word.
#[derive(Debug, Clone, Copy)]
enum Entry {
    /// A committed speculative write.
    Data {
        incarnation: Incarnation,
        value: u64,
        /// Virtual time at which the writing incarnation finished.
        at: u64,
    },
    /// The previous incarnation of this iteration wrote here and was
    /// aborted; the next incarnation is estimated to write here again.
    Estimate {
        /// Virtual time at which the abort was processed.
        at: u64,
    },
}

/// The outcome of resolving a speculative read in the multi-version store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResult {
    /// No visible lower-iteration write: read shared memory.
    Base,
    /// A visible lower-iteration write supplies the value.
    Versioned(ReadOrigin, u64),
    /// The highest visible lower-iteration entry is an estimate: the reader
    /// should block on the named iteration instead of executing further.
    Blocked(Iteration),
}

/// Aggregate counters of one [`MvMemory`] lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvStats {
    /// Words currently holding at least one version.
    pub words: u64,
    /// Total versioned entries recorded (across incarnations).
    pub entries_recorded: u64,
    /// Entries converted to estimates by aborts.
    pub estimates_created: u64,
}

/// The multi-version memory: `(word address, iteration) -> value`, layered
/// over a base memory that is only read, never written, until the final
/// commit. Shareable across worker threads; see the module docs.
#[derive(Debug)]
pub struct MvMemory {
    shards: Vec<RwLock<HashMap<u64, BTreeMap<Iteration, Entry>>>>,
    /// The word set written by the latest incarnation of each iteration, used
    /// to remove stale entries when the next incarnation writes less.
    last_writes: Vec<Mutex<Vec<u64>>>,
    entries_recorded: AtomicU64,
    estimates_created: AtomicU64,
}

impl MvMemory {
    /// An empty store for an invocation of `iterations` iterations.
    #[must_use]
    pub fn new(iterations: usize) -> MvMemory {
        MvMemory {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            last_writes: (0..iterations).map(|_| Mutex::new(Vec::new())).collect(),
            entries_recorded: AtomicU64::new(0),
            estimates_created: AtomicU64::new(0),
        }
    }

    fn shard(&self, word: u64) -> &RwLock<HashMap<u64, BTreeMap<Iteration, Entry>>> {
        // Word addresses are 8-byte aligned; hash the word index, not the
        // low zero bits.
        &self.shards[((word >> 3) as usize) % SHARDS]
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> MvStats {
        MvStats {
            words: self
                .shards
                .iter()
                .map(|s| s.read().expect("mv shard poisoned").len() as u64)
                .sum(),
            entries_recorded: self.entries_recorded.load(Ordering::Relaxed),
            estimates_created: self.estimates_created.load(Ordering::Relaxed),
        }
    }

    /// Number of estimate markers currently live in the store. Zero once
    /// every iteration has (re-)executed and validated — the invariant the
    /// convergence tests assert.
    #[must_use]
    pub fn live_estimates(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("mv shard poisoned")
                    .values()
                    .flat_map(|versions| versions.values())
                    .filter(|e| matches!(e, Entry::Estimate { .. }))
                    .count() as u64
            })
            .sum()
    }

    /// Resolves a read of `word` by `iteration` whose execution started at
    /// virtual time `now`. Pass [`u64::MAX`] to see every entry (validation
    /// and commit are "late" and observe the full store; racing workers use
    /// the same to get real Block-STM visibility).
    #[must_use]
    pub fn read(&self, word: u64, iteration: Iteration, now: u64) -> ReadResult {
        let shard = self.shard(word).read().expect("mv shard poisoned");
        let Some(versions) = shard.get(&word) else {
            return ReadResult::Base;
        };
        for (&it, entry) in versions.range(..iteration).rev() {
            match *entry {
                Entry::Data {
                    incarnation,
                    value,
                    at,
                } if at <= now => {
                    return ReadResult::Versioned(
                        ReadOrigin::Version {
                            iteration: it,
                            incarnation,
                        },
                        value,
                    );
                }
                Entry::Estimate { at } if at <= now => return ReadResult::Blocked(it),
                // Recorded after this execution started: not visible yet.
                _ => {}
            }
        }
        ReadResult::Base
    }

    /// Records the write set of one finished incarnation, stamped with the
    /// virtual time `at` at which it completed. Entries written by the
    /// previous incarnation but absent from the new write set are removed.
    /// Returns `true` when the incarnation wrote to a word its predecessor
    /// did not touch (Block-STM's `wrote_new_location`).
    ///
    /// The scheduler dispatches at most one live incarnation per iteration,
    /// so concurrent `record` calls always target different iterations.
    pub fn record(
        &self,
        iteration: Iteration,
        incarnation: Incarnation,
        writes: &HashMap<u64, u64>,
        at: u64,
    ) -> bool {
        let mut wrote_new = false;
        for (&word, &value) in writes {
            let prev = self
                .shard(word)
                .write()
                .expect("mv shard poisoned")
                .entry(word)
                .or_default()
                .insert(
                    iteration,
                    Entry::Data {
                        incarnation,
                        value,
                        at,
                    },
                );
            wrote_new |= prev.is_none();
            self.entries_recorded.fetch_add(1, Ordering::Relaxed);
        }
        let prev_words = {
            let mut new: Vec<u64> = writes.keys().copied().collect();
            new.sort_unstable();
            std::mem::replace(
                &mut *self.last_writes[iteration]
                    .lock()
                    .expect("mv write set poisoned"),
                new,
            )
        };
        for word in prev_words {
            if !writes.contains_key(&word) {
                let mut shard = self.shard(word).write().expect("mv shard poisoned");
                if let Some(versions) = shard.get_mut(&word) {
                    versions.remove(&iteration);
                    if versions.is_empty() {
                        shard.remove(&word);
                    }
                }
            }
        }
        wrote_new
    }

    /// Replaces every entry of `iteration`'s latest incarnation with an
    /// estimate marker (called when the incarnation is aborted).
    pub fn convert_writes_to_estimates(&self, iteration: Iteration, at: u64) {
        let words = self.last_writes[iteration]
            .lock()
            .expect("mv write set poisoned")
            .clone();
        for word in words {
            let mut shard = self.shard(word).write().expect("mv shard poisoned");
            if let Some(entry) = shard
                .get_mut(&word)
                .and_then(|versions| versions.get_mut(&iteration))
            {
                *entry = Entry::Estimate { at };
                self.estimates_created.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The final memory image: for every word, the value written by the
    /// highest iteration, sorted by address. Must only be called once every
    /// iteration has validated (no estimates remain).
    #[must_use]
    pub fn final_image(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                let shard = s.read().expect("mv shard poisoned");
                shard
                    .iter()
                    .filter_map(|(&word, versions)| {
                        versions.values().next_back().and_then(|entry| match entry {
                            Entry::Data { value, .. } => Some((word, *value)),
                            Entry::Estimate { .. } => None,
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Applies the final image to `base` (the commit at the end of a
    /// successful speculative invocation).
    pub fn commit_into<M: GuestMemory>(&self, base: &mut M) {
        for (word, value) in self.final_image() {
            base.write_u64(word, value);
        }
    }
}

/// A read recorded by one incarnation: where the value came from and what it
/// was (the latter enables lazy *value* validation on top of read-from
/// tracking).
pub type ReadSet = HashMap<u64, (ReadOrigin, u64)>;

/// Counters of one incarnation's execution through a [`SpecView`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// 64-bit word reads that consulted shared state (own-buffer hits are
    /// not counted).
    pub reads: u64,
    /// 64-bit word writes buffered.
    pub writes: u64,
}

/// A per-incarnation speculative view over `MvMemory` + base memory.
///
/// Reads consult the incarnation's own write buffer first, then the
/// multi-version store (restricted to entries visible at the incarnation's
/// virtual start time), then shared memory — recording the origin and value
/// of every shared read. Writes are buffered until the engine records them.
///
/// The base is borrowed *immutably* (through [`PeekMemory`]): any number of
/// views — one per racing worker thread — can execute over the same shared
/// image at once, and nothing touches the base until the final commit.
#[derive(Debug)]
pub struct SpecView<'a, M: PeekMemory> {
    base: &'a M,
    mv: &'a MvMemory,
    iteration: Iteration,
    /// Virtual time at which this incarnation started executing
    /// ([`u64::MAX`] for racing workers: see everything recorded so far).
    now: u64,
    read_set: ReadSet,
    write_buffer: HashMap<u64, u64>,
    blocked_on: Option<Iteration>,
    stats: ViewStats,
}

impl<'a, M: PeekMemory> SpecView<'a, M> {
    /// A fresh view for one incarnation of `iteration` starting at virtual
    /// time `now`.
    pub fn new(base: &'a M, mv: &'a MvMemory, iteration: Iteration, now: u64) -> Self {
        SpecView {
            base,
            mv,
            iteration,
            now,
            read_set: ReadSet::default(),
            write_buffer: HashMap::new(),
            blocked_on: None,
            stats: ViewStats::default(),
        }
    }

    /// The iteration this view belongs to.
    #[must_use]
    pub fn iteration(&self) -> Iteration {
        self.iteration
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ViewStats {
        self.stats
    }

    /// Consumes the view, returning `(read set, write buffer, blocked-on,
    /// stats)`.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn finish(self) -> (ReadSet, HashMap<u64, u64>, Option<Iteration>, ViewStats) {
        (
            self.read_set,
            self.write_buffer,
            self.blocked_on,
            self.stats,
        )
    }

    fn aligned(addr: u64) -> u64 {
        addr & !7
    }
}

impl<M: PeekMemory> GuestMemory for SpecView<'_, M> {
    fn read_u8(&mut self, addr: u64) -> u8 {
        let word = Self::aligned(addr);
        let v = self.read_u64(word);
        v.to_le_bytes()[(addr - word) as usize]
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let word = Self::aligned(addr);
        let mut bytes = self.read_u64(word).to_le_bytes();
        bytes[(addr - word) as usize] = value;
        self.write_u64(word, u64::from_le_bytes(bytes));
    }

    fn read_u64(&mut self, addr: u64) -> u64 {
        let word = Self::aligned(addr);
        if word == addr {
            if let Some(v) = self.write_buffer.get(&word) {
                return *v;
            }
            self.stats.reads += 1;
            let (origin, value) = match self.mv.read(word, self.iteration, self.now) {
                ReadResult::Versioned(origin, value) => (origin, value),
                ReadResult::Base => (ReadOrigin::Base, self.base.peek_u64(word)),
                ReadResult::Blocked(on) => {
                    // Remember the *lowest* blocking iteration; execution is
                    // abandoned by the engine, the value is a placeholder.
                    let lowest = self.blocked_on.map_or(on, |prev| prev.min(on));
                    self.blocked_on = Some(lowest);
                    (ReadOrigin::Base, self.base.peek_u64(word))
                }
            };
            // First read wins: the incarnation's view of a word must be the
            // value it first observed.
            self.read_set.entry(word).or_insert((origin, value)).1
        } else {
            // Unaligned: compose from the two covering words.
            let lo = self.read_u64(word);
            let hi = self.read_u64(word + 8);
            let shift = (addr - word) * 8;
            (lo >> shift) | (hi << (64 - shift))
        }
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let word = Self::aligned(addr);
        if word == addr {
            self.write_buffer.insert(word, value);
            self.stats.writes += 1;
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_vm::FlatMemory;

    #[test]
    fn reads_observe_highest_visible_lower_iteration() {
        let mut base = FlatMemory::new();
        base.write_u64(0x1000, 1);
        let mv = MvMemory::new(8);
        let w2: HashMap<u64, u64> = [(0x1000u64, 22u64)].into_iter().collect();
        let w5: HashMap<u64, u64> = [(0x1000u64, 55u64)].into_iter().collect();
        assert!(mv.record(2, 0, &w2, 10));
        assert!(mv.record(5, 0, &w5, 30));
        // Iteration 7, started at t=40: sees iteration 5.
        assert_eq!(
            mv.read(0x1000, 7, 40),
            ReadResult::Versioned(
                ReadOrigin::Version {
                    iteration: 5,
                    incarnation: 0
                },
                55
            )
        );
        // Iteration 7, started at t=20: iteration 5's write is in its future,
        // so it sees iteration 2 — the deterministic model of a real race.
        assert_eq!(
            mv.read(0x1000, 7, 20),
            ReadResult::Versioned(
                ReadOrigin::Version {
                    iteration: 2,
                    incarnation: 0
                },
                22
            )
        );
        // Iteration 1 never sees higher iterations.
        assert_eq!(mv.read(0x1000, 1, u64::MAX), ReadResult::Base);
    }

    #[test]
    fn estimates_block_readers_and_rerecording_clears_them() {
        let mv = MvMemory::new(8);
        let w: HashMap<u64, u64> = [(0x2000u64, 7u64)].into_iter().collect();
        mv.record(3, 0, &w, 5);
        mv.convert_writes_to_estimates(3, 6);
        assert_eq!(mv.read(0x2000, 4, 10), ReadResult::Blocked(3));
        assert_eq!(mv.live_estimates(), 1);
        // The next incarnation writes elsewhere: the estimate is removed.
        let w2: HashMap<u64, u64> = [(0x2008u64, 8u64)].into_iter().collect();
        mv.record(3, 1, &w2, 12);
        assert_eq!(mv.read(0x2000, 4, 20), ReadResult::Base);
        assert_eq!(mv.live_estimates(), 0);
        assert_eq!(
            mv.read(0x2008, 4, 20),
            ReadResult::Versioned(
                ReadOrigin::Version {
                    iteration: 3,
                    incarnation: 1
                },
                8
            )
        );
    }

    #[test]
    fn view_buffers_writes_and_records_first_read() {
        let mut base = FlatMemory::new();
        base.write_u64(0x3000, 9);
        let mv = MvMemory::new(1);
        let mut view = SpecView::new(&base, &mv, 0, 0);
        assert_eq!(view.read_u64(0x3000), 9);
        view.write_u64(0x3000, 11);
        assert_eq!(view.read_u64(0x3000), 11, "reads observe own writes");
        let (reads, writes, blocked, stats) = view.finish();
        assert_eq!(reads.get(&0x3000), Some(&(ReadOrigin::Base, 9)));
        assert_eq!(writes.get(&0x3000), Some(&11));
        assert!(blocked.is_none());
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(base.peek_u64(0x3000), 9, "base untouched until commit");
    }

    #[test]
    fn byte_accesses_compose_through_words() {
        let mut base = FlatMemory::new();
        base.write_u64(0x1000, 0x1122_3344_5566_7788);
        let mv = MvMemory::new(1);
        let mut view = SpecView::new(&base, &mv, 0, 0);
        assert_eq!(view.read_u8(0x1001), 0x77);
        view.write_u8(0x1001, 0xaa);
        assert_eq!(view.read_u8(0x1001), 0xaa);
        let (_, writes, _, _) = view.finish();
        assert_eq!(writes.get(&0x1000), Some(&0x1122_3344_5566_aa88));
    }

    #[test]
    fn final_image_takes_the_highest_iteration_per_word() {
        let mv = MvMemory::new(8);
        mv.record(0, 0, &[(0x10u64, 1u64)].into_iter().collect(), 1);
        mv.record(4, 0, &[(0x10u64, 5u64), (0x18, 6)].into_iter().collect(), 2);
        mv.record(2, 0, &[(0x10u64, 3u64)].into_iter().collect(), 3);
        assert_eq!(mv.final_image(), vec![(0x10, 5), (0x18, 6)]);
        let mut base = FlatMemory::new();
        mv.commit_into(&mut base);
        assert_eq!(base.read_u64(0x10), 5);
        assert_eq!(base.read_u64(0x18), 6);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        // A smoke test of the sharded store itself: 8 threads record and
        // re-read disjoint iterations' writes over a shared word pool.
        let mv = MvMemory::new(64);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let mv = &mv;
                scope.spawn(move || {
                    for k in 0..8usize {
                        let iteration = t * 8 + k;
                        let word = 0x9000 + (iteration as u64 % 16) * 8;
                        let writes: HashMap<u64, u64> =
                            [(word, iteration as u64)].into_iter().collect();
                        mv.record(iteration, 0, &writes, 1);
                        // The write is immediately visible to higher readers.
                        match mv.read(word, iteration + 1, u64::MAX) {
                            ReadResult::Versioned(_, _) => {}
                            other => panic!("expected a versioned read, got {other:?}"),
                        }
                    }
                });
            }
        });
        let stats = mv.stats();
        assert_eq!(stats.entries_recorded, 64);
        assert_eq!(stats.words, 16);
        assert_eq!(mv.final_image().len(), 16);
    }
}
