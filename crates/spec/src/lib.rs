//! # janus-spec — Block-STM-style speculative DOACROSS loop execution
//!
//! The seed system parallelises loops it can prove (or bounds-check) to be
//! DOALL; loops with *may* cross-iteration dependences — data-dependent
//! subscripts such as `hist[idx[i]] += w[i]`, sliding windows, sparse
//! scatters — either run serially or hide behind the one-shot JudoSTM view in
//! `janus-dbm`. This crate supplies the missing runtime: an optimistic,
//! multi-version, lazily-validated execution engine for whole loop
//! invocations, modelled on Block-STM (and its Rust incarnations such as
//! `pevm`), adapted to the deterministic virtual-time substrate of this
//! reproduction.
//!
//! ## Architecture
//!
//! * [`MvMemory`] — a **multi-version guest-memory store** keyed by
//!   `(word address, iteration)`, layered over [`janus_vm::GuestMemory`].
//!   A speculative read by iteration *i* observes the highest write below
//!   *i* that is *visible at the reader's virtual start time*; aborted
//!   incarnations leave *estimate* markers that block readers instead of
//!   letting them execute into a doomed validation.
//! * [`SpecView`] — the per-incarnation view: buffered writes, first-read
//!   origin+value tracking, byte accesses composed through aligned words.
//! * [`scheduler::Scheduler`] — the **collaborative scheduler**: Block-STM's
//!   execution/validation counters and task preference, driven from one host
//!   thread; [`scheduler::Lanes`] charges every task to the least-loaded of
//!   `lanes` virtual workers so the reported parallel time is a reproducible
//!   model of `lanes`-way execution.
//! * [`run_speculative`] — the deterministic engine: dispatches tasks until
//!   every iteration validates, re-executing **only the dependents of a
//!   failed iteration**, then commits the serial-equivalent final image into
//!   base memory.
//! * [`run_speculative_pooled`] — the **racing worker pool**: the same task
//!   machine driven concurrently by one OS thread per lane
//!   (`std::thread::scope`), made possible by the thread-safe store and
//!   scheduler. Workers observe real Block-STM visibility (everything
//!   recorded so far); the converged image is serial-equivalent on every
//!   schedule, while the abort/retry counters describe the actual race and
//!   vary run to run.
//!
//! ## Two execution modes
//!
//! Every subsystem here is shared between two drivers. The *deterministic
//! coordinator* ([`run_speculative`]) runs tasks one at a time, gates
//! multi-version visibility by virtual lane time, and therefore produces
//! bit-identical conflicts, abort counts and modelled parallel cycles on
//! every run and every machine — it is what all figures are built from. The
//! *racing pool* ([`run_speculative_pooled`]) runs the same tasks on real
//! threads for real wall-clock speedup. `janus-dbm`'s native-threads backend
//! pairs them: the pool races first over the read-only memory image, the
//! coordinator then replays the invocation in commit order for the modelled
//! numbers, and the two final images are cross-checked word for word — which
//! is why modelled cycles (and every figure) are invariant across execution
//! backends.
//!
//! ## Lazy validation vs. the JudoSTM design
//!
//! The `janus-dbm` STM ([`TxView`](../janus_dbm/index.html)) follows JudoSTM:
//! a transaction validates *eagerly at commit*, by re-reading every logged
//! address and comparing **values**, and a conflict rolls the whole
//! transaction back to be re-run non-speculatively. That is the right shape
//! for its job — wrapping a single dynamically-discovered call — but it has
//! no notion of *who* a conflicting write belonged to, so it cannot scope a
//! rollback to the iterations that actually depended on it.
//!
//! This engine instead validates *lazily* and *versioned*, the Block-STM way:
//! every read records the `(iteration, incarnation)` it read from, validation
//! re-resolves the read against the multi-version store and passes when the
//! **read-from version is unchanged** — falling back to JudoSTM's value
//! comparison, which forgives silent re-writes of the same value. A failed
//! iteration converts its writes to estimates and is re-executed; only
//! iterations that actually read those writes (directly, via estimates, or
//! through a failed re-resolution) follow it, while independent iterations
//! keep their results. Abort cost is therefore proportional to the *real*
//! dependence structure of the loop, not to its length — which is what makes
//! DOACROSS loops profitable to speculate at all.
//!
//! ## Determinism
//!
//! Real Block-STM races threads against each other; two runs can abort
//! different iterations. Here every source of nondeterminism is replaced by
//! virtual time: an execution task starts at the least-loaded lane's clock,
//! its writes become visible at its completion time, and a read only sees
//! writes recorded at or before the reader's start. Conflicts — and thus
//! abort counts, retry counts and the reported speedup — are a pure function
//! of the schedule, reproducible across runs and machines.
//!
//! # Example
//!
//! ```
//! use janus_spec::{run_speculative, IterationRun, SpecConfig, SpecView};
//! use janus_vm::{FlatMemory, GuestMemory};
//!
//! // hist[i % 3] += i, speculatively, over 4 lanes.
//! let mut mem = FlatMemory::new();
//! let out = run_speculative(
//!     &SpecConfig { lanes: 4, ..SpecConfig::default() },
//!     &mut mem,
//!     24,
//!     |i, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
//!         let addr = 0x1000 + (i as u64 % 3) * 8;
//!         let v = view.read_u64(addr);
//!         view.write_u64(addr, v + i as u64);
//!         Ok(IterationRun { cycles: 20, payload: () })
//!     },
//! )
//! .unwrap();
//! // The committed image equals the serial execution's final memory.
//! for k in 0..3u64 {
//!     let expect: u64 = (0..24u64).filter(|i| i % 3 == k).sum();
//!     assert_eq!(mem.read_u64(0x1000 + k * 8), expect);
//! }
//! assert_eq!(out.stats.iterations, 24);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod mv;
mod pool;
pub mod scheduler;

pub use engine::{run_speculative, run_speculative_with_lanes, IterationRun, SpecOutcome};
pub use mv::{
    Incarnation, Iteration, MvMemory, MvStats, ReadOrigin, ReadResult, ReadSet, SpecView, ViewStats,
};
pub use pool::{run_speculative_pooled, run_speculative_pooled_traced, PooledOutcome};
pub use scheduler::{LaneSet, Lanes};

use std::fmt;

/// Configuration of one speculative invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecConfig {
    /// Number of virtual worker lanes (the modelled thread count).
    pub lanes: u32,
    /// Extra virtual cycles per tracked speculative read.
    pub read_overhead: u64,
    /// Extra virtual cycles per buffered speculative write.
    pub write_overhead: u64,
    /// Fixed virtual cycles per validation task.
    pub validate_base_cost: u64,
    /// Virtual cycles per read-set entry re-resolved during validation.
    pub validate_read_cost: u64,
    /// Virtual cycles charged per abort (estimate conversion, task churn).
    pub abort_cost: u64,
    /// Virtual cycles per word written during the final commit.
    pub commit_cost_per_write: u64,
    /// Task budget per iteration: the engine gives up (and the caller falls
    /// back to sequential execution) after `iterations * max_task_factor`
    /// tasks, a livelock guard for pathologically dependent loops.
    pub max_task_factor: u32,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            lanes: 8,
            read_overhead: 6,
            write_overhead: 10,
            validate_base_cost: 12,
            validate_read_cost: 4,
            abort_cost: 60,
            commit_cost_per_write: 4,
            max_task_factor: 64,
        }
    }
}

/// Counters describing one speculative invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Iterations in the invocation.
    pub iterations: u64,
    /// Incarnations that ran to completion (>= `iterations`; the excess is
    /// re-execution work caused by conflicts).
    pub executions: u64,
    /// Aborts: failed validations, estimate stalls and retried faults.
    pub aborts: u64,
    /// Validation tasks performed.
    pub validations: u64,
    /// Executions abandoned early because they read an estimate marker.
    pub estimate_stalls: u64,
    /// Guest faults retried as conflicts (reads of inconsistent state).
    pub faults_retried: u64,
    /// Speculative word reads tracked.
    pub reads: u64,
    /// Speculative word writes buffered.
    pub writes: u64,
    /// Highest incarnation index any iteration reached.
    pub max_incarnation: u32,
    /// Distinct words that ever held a speculative version.
    pub versioned_words: u64,
}

impl SpecStats {
    /// Completed re-executions beyond the first incarnation of each
    /// iteration.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.executions.saturating_sub(self.iterations)
    }

    /// Aborts per completed execution (0 when nothing ran).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.aborts as f64 / self.executions as f64
        }
    }

    /// Folds another invocation's counters into this one.
    pub fn merge(&mut self, other: &SpecStats) {
        self.iterations += other.iterations;
        self.executions += other.executions;
        self.aborts += other.aborts;
        self.validations += other.validations;
        self.estimate_stalls += other.estimate_stalls;
        self.faults_retried += other.faults_retried;
        self.reads += other.reads;
        self.writes += other.writes;
        self.max_incarnation = self.max_incarnation.max(other.max_incarnation);
        self.versioned_words += other.versioned_words;
    }
}

/// Errors raised by the speculative engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError<E> {
    /// The loop body faulted on consistent state (a genuine guest error).
    Body(E),
    /// The task budget was exhausted; the loop is too dependent to speculate
    /// profitably and should run sequentially.
    AbortLimit {
        /// Iterations in the invocation.
        iterations: usize,
        /// Tasks dispatched before giving up.
        tasks: u64,
    },
}

impl<E: fmt::Display> fmt::Display for SpecError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Body(e) => write!(f, "speculative loop body failed: {e}"),
            SpecError::AbortLimit { iterations, tasks } => write!(
                f,
                "speculation abandoned after {tasks} tasks over {iterations} iterations"
            ),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for SpecError<E> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_derive_retries_and_abort_rate() {
        let mut s = SpecStats {
            iterations: 10,
            executions: 13,
            aborts: 3,
            ..SpecStats::default()
        };
        assert_eq!(s.retries(), 3);
        assert!((s.abort_rate() - 3.0 / 13.0).abs() < 1e-12);
        s.merge(&SpecStats {
            iterations: 2,
            executions: 2,
            max_incarnation: 4,
            ..SpecStats::default()
        });
        assert_eq!(s.iterations, 12);
        assert_eq!(s.max_incarnation, 4);
        assert_eq!(SpecStats::default().abort_rate(), 0.0);
    }

    #[test]
    fn errors_display() {
        let e: SpecError<String> = SpecError::Body("bad pc".to_string());
        assert!(e.to_string().contains("bad pc"));
        let e: SpecError<String> = SpecError::AbortLimit {
            iterations: 8,
            tasks: 600,
        };
        assert!(e.to_string().contains("600 tasks"));
    }
}
