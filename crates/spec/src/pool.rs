//! The racing worker pool: Block-STM speculation across real OS threads.
//!
//! Where [`crate::run_speculative`] drives the execution/validation task
//! machine from one coordinator in deterministic virtual time, this engine
//! spawns one worker per lane (`std::thread::scope`) and lets the workers
//! *race*: each pulls the next task from the shared atomic [`Scheduler`],
//! executes incarnations against the shared [`MvMemory`] through a
//! [`SpecView`] over the read-only base image, validates lazily, and
//! converts aborted incarnations' writes to estimates — exactly the
//! `block-stm-revm` shape.
//!
//! Two things differ from the deterministic engine, both deliberate:
//!
//! * **Visibility is real, not virtual-time-gated.** Workers read the store
//!   at `now = u64::MAX`: an incarnation observes everything recorded so
//!   far, so which executions conflict depends on the actual interleaving
//!   the OS produced. The *converged result* does not: Block-STM's
//!   correctness argument (validation against the multi-version store,
//!   lowest-iteration-first task order, estimates for aborted writes) makes
//!   the final image equal the serial execution's image on every schedule.
//! * **Counters are diagnostics, not figures.** Abort/retry/validation
//!   counts describe the race that happened and vary run to run. The
//!   modelled, backend-invariant numbers reported in figures come from the
//!   deterministic engine, which `janus-dbm`'s native backend replays in
//!   commit order alongside this pool (and cross-checks word for word
//!   against [`PooledOutcome::image`]).
//!
//! Faults on speculative state are retried (a failed execution either blocks
//! on the estimate it read or is re-dispatched as the next incarnation); a
//! fault that survives several consecutive retries with every lower
//! iteration observed validated is reported as a genuine guest fault
//! ([`SpecError::Body`]), and pathologically dependent loops exhaust the
//! task budget ([`SpecError::AbortLimit`]) — either way the caller can fall
//! back to the deterministic path, which classifies faults exactly.

use crate::engine::{validate, IterationRun};
use crate::mv::{MvMemory, ReadSet};
use crate::scheduler::{Scheduler, Task};
use crate::{SpecConfig, SpecError, SpecStats, SpecView};
use janus_obs::Recorder;
use janus_vm::PeekMemory;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-iteration slot shared between racing workers: the latest completed
/// incarnation's read set and payload, plus the run of consecutive
/// incarnations that faulted with no identifiable blocking iteration (see
/// the fault-classification comment in [`run_speculative_pooled`]).
struct IterSlot<P> {
    read_set: ReadSet,
    payload: Option<P>,
    fault_streak: u32,
}

impl<P> Default for IterSlot<P> {
    fn default() -> Self {
        IterSlot {
            read_set: ReadSet::default(),
            payload: None,
            fault_streak: 0,
        }
    }
}

/// Consecutive no-dependency faults of one iteration before the pool calls
/// the fault genuine. Racing interleavings can make a *speculative* fault
/// look consistent (the lower-iteration scan is not an atomic snapshot), but
/// each extra incarnation re-executes over fresher state, so a fault that
/// survives several consecutive retries is a real guest fault — while a
/// conflict-artifact fault converges and resets the streak.
const MAX_FAULT_STREAK: u32 = 3;

/// The result of one successful pooled (racing) speculative invocation.
///
/// Nothing has been written to base memory: the caller applies
/// [`PooledOutcome::image`] (or, like the native execution backend, uses the
/// deterministic engine's identical commit and keeps this image as the
/// cross-check).
pub struct PooledOutcome<P> {
    /// The race's own counters. **Nondeterministic**: which incarnations
    /// conflicted depends on the OS schedule. Useful as diagnostics; the
    /// figures use the deterministic engine's counters instead.
    pub stats: SpecStats,
    /// The serial-equivalent final memory image, sorted by word address.
    pub image: Vec<(u64, u64)>,
    /// The payload of each iteration's validated incarnation, in iteration
    /// order.
    pub payloads: Vec<P>,
    /// OS worker threads the pool spawned.
    pub threads_used: usize,
    /// Estimate markers still live in the store after convergence. Always 0
    /// on success (every aborted incarnation re-executed and re-recorded);
    /// exposed so tests can assert the invariant.
    pub live_estimates: u64,
}

impl<P> std::fmt::Debug for PooledOutcome<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledOutcome")
            .field("stats", &self.stats)
            .field("image", &self.image.len())
            .field("payloads", &self.payloads.len())
            .field("threads_used", &self.threads_used)
            .field("live_estimates", &self.live_estimates)
            .finish()
    }
}

/// The race's diagnostic counters, shared by reference across workers and
/// folded into a [`SpecStats`] once the pool joins. One struct so the stat
/// surface lives in one place: adding a counter means one field here, one
/// `fetch_add` site and one line in [`RaceCounters::into_stats`].
#[derive(Default)]
struct RaceCounters {
    executions: AtomicU64,
    aborts: AtomicU64,
    validations: AtomicU64,
    estimate_stalls: AtomicU64,
    faults_retried: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    max_incarnation: AtomicU32,
}

impl RaceCounters {
    fn into_stats(self, iterations: u64, versioned_words: u64) -> SpecStats {
        SpecStats {
            iterations,
            executions: self.executions.into_inner(),
            aborts: self.aborts.into_inner(),
            validations: self.validations.into_inner(),
            estimate_stalls: self.estimate_stalls.into_inner(),
            faults_retried: self.faults_retried.into_inner(),
            reads: self.reads.into_inner(),
            writes: self.writes.into_inner(),
            max_incarnation: self.max_incarnation.into_inner(),
            versioned_words,
        }
    }
}

/// Shared abort signal: the first worker to hit an error publishes it and
/// stops the pool.
struct Poison<E> {
    stop: AtomicBool,
    error: Mutex<Option<SpecError<E>>>,
}

impl<E> Poison<E> {
    fn new() -> Self {
        Poison {
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    fn set(&self, e: SpecError<E>) {
        let mut slot = self.error.lock().expect("poison slot");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::SeqCst);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Runs `iterations` speculative loop iterations over the shared read-only
/// `base` image, racing incarnations across `threads` OS worker threads.
///
/// `body` executes one incarnation of one iteration against the supplied
/// [`SpecView`]; it is called concurrently from many threads and must be
/// `Fn + Sync`. The base is only ever read — apply the returned image to
/// commit.
///
/// # Errors
///
/// Returns [`SpecError::Body`] when an iteration faults on consistent state
/// (iteration 0 immediately — it can never read speculative state — and any
/// other iteration after its fault survives several consecutive retries with
/// every lower iteration observed validated), and [`SpecError::AbortLimit`]
/// when the task budget is exhausted — pathologically dependent loops; the
/// caller should fall back to a deterministic path.
pub fn run_speculative_pooled<M, P, E, F>(
    config: &SpecConfig,
    threads: usize,
    base: &M,
    iterations: usize,
    body: F,
) -> Result<PooledOutcome<P>, SpecError<E>>
where
    M: PeekMemory + Sync,
    P: Send,
    E: Send,
    F: Fn(usize, &mut SpecView<'_, M>) -> Result<IterationRun<P>, E> + Sync,
{
    run_speculative_pooled_traced(
        config,
        threads,
        base,
        iterations,
        body,
        &Recorder::default(),
    )
}

/// [`run_speculative_pooled`] with a flight recorder attached: each worker
/// registers a `spec-worker-N` track and every incarnation emits
/// `spec.execute`/`spec.validate` spans plus `spec.abort`/`spec.retry`
/// instants (category `spec.pool`). With a disabled recorder this is
/// byte-for-byte the untraced run — every recording call is one branch.
///
/// # Errors
///
/// Exactly as [`run_speculative_pooled`].
pub fn run_speculative_pooled_traced<M, P, E, F>(
    config: &SpecConfig,
    threads: usize,
    base: &M,
    iterations: usize,
    body: F,
    recorder: &Recorder,
) -> Result<PooledOutcome<P>, SpecError<E>>
where
    M: PeekMemory + Sync,
    P: Send,
    E: Send,
    F: Fn(usize, &mut SpecView<'_, M>) -> Result<IterationRun<P>, E> + Sync,
{
    if iterations == 0 {
        return Ok(PooledOutcome {
            stats: SpecStats::default(),
            image: Vec::new(),
            payloads: Vec::new(),
            threads_used: 0,
            live_estimates: 0,
        });
    }
    let workers = threads.clamp(1, iterations);

    let mv = MvMemory::new(iterations);
    let sched = Scheduler::new(iterations);
    let slots: Vec<Mutex<IterSlot<P>>> = (0..iterations).map(|_| Mutex::default()).collect();
    let poison: Poison<E> = Poison::new();

    // The racing pool burns more tasks than the deterministic engine (stale
    // validations, premature wakeups), so its budget scales with the worker
    // count on top of the per-iteration factor.
    let max_tasks = (iterations as u64)
        .saturating_mul(u64::from(config.max_task_factor.max(2)))
        .saturating_mul(workers as u64)
        .saturating_add(64);
    let tasks = AtomicU64::new(0);
    // Wedge detection: a worker that finds no task spin-yields, but only
    // *consecutive* empty polls during which the global task counter also
    // stood still count towards the limit — a long mostly-serial stretch
    // (one worker busy, the rest idle) keeps resetting the count and must
    // not poison a healthy invocation. If the limit is ever hit the pool is
    // making no progress at all; give up rather than hang (the caller's
    // deterministic fallback still produces a result).
    const MAX_STALLED_POLLS: u64 = 10_000_000;

    let counters = RaceCounters::default();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let mv = &mv;
            let sched = &sched;
            let slots = &slots;
            let poison = &poison;
            let body = &body;
            let tasks = &tasks;
            let c = &counters;
            let rec = recorder;
            scope.spawn(move || {
                if rec.is_enabled() {
                    rec.set_thread_track(&format!("spec-worker-{worker}"));
                }
                let mut stalled_polls = 0u64;
                let mut last_seen_tasks = u64::MAX;
                while !poison.stopped() && !sched.done() {
                    let Some(task) = sched.next_task() else {
                        let seen = tasks.load(Ordering::Relaxed);
                        if seen != last_seen_tasks {
                            last_seen_tasks = seen;
                            stalled_polls = 0;
                        } else {
                            stalled_polls += 1;
                            if stalled_polls > MAX_STALLED_POLLS {
                                poison.set(SpecError::AbortLimit {
                                    iterations,
                                    tasks: seen,
                                });
                            }
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    stalled_polls = 0;
                    if tasks.fetch_add(1, Ordering::Relaxed) >= max_tasks {
                        poison.set(SpecError::AbortLimit {
                            iterations,
                            tasks: max_tasks,
                        });
                        break;
                    }
                    match task {
                        Task::Execution {
                            iteration,
                            incarnation,
                        } => {
                            // Real Block-STM visibility: see everything
                            // recorded so far.
                            let mut span = rec
                                .span("spec.pool", "spec.execute")
                                .arg("iteration", iteration)
                                .arg("incarnation", incarnation);
                            let mut view = SpecView::new(base, mv, iteration, u64::MAX);
                            match body(iteration, &mut view) {
                                Ok(run) => {
                                    let (read_set, write_buffer, blocked, vs) = view.finish();
                                    c.reads.fetch_add(vs.reads, Ordering::Relaxed);
                                    c.writes.fetch_add(vs.writes, Ordering::Relaxed);
                                    let _ = run.cycles; // wall-clock substrate: no virtual charge
                                    if let Some(on) = blocked {
                                        c.estimate_stalls.fetch_add(1, Ordering::Relaxed);
                                        c.aborts.fetch_add(1, Ordering::Relaxed);
                                        span.push_arg("outcome", "estimate-stall");
                                        rec.instant(
                                            "spec.pool",
                                            "spec.abort",
                                            &[
                                                ("iteration", iteration.into()),
                                                ("blocked_on", on.into()),
                                                ("reason", "estimate-stall".into()),
                                            ],
                                        );
                                        sched.abort_on_dependency(iteration, on);
                                    } else {
                                        c.executions.fetch_add(1, Ordering::Relaxed);
                                        c.max_incarnation.fetch_max(incarnation, Ordering::Relaxed);
                                        span.push_arg("outcome", "ok");
                                        let changed =
                                            mv.record(iteration, incarnation, &write_buffer, 0);
                                        {
                                            let mut slot = slots[iteration]
                                                .lock()
                                                .expect("iteration slot poisoned");
                                            slot.read_set = read_set;
                                            slot.payload = Some(run.payload);
                                            slot.fault_streak = 0;
                                        }
                                        sched.finish_execution(iteration, changed);
                                    }
                                }
                                Err(e) => {
                                    drop(view);
                                    span.push_arg("outcome", "fault");
                                    // Fault classification under racing. A
                                    // fault on inconsistent speculative state
                                    // is a conflict artifact and must be
                                    // retried; a fault on consistent state is
                                    // a genuine guest fault. Iteration 0
                                    // never reads speculative state (no lower
                                    // versions exist and the base is
                                    // immutable), so its faults are genuine
                                    // immediately. For higher iterations no
                                    // scan of the lower statuses is an atomic
                                    // snapshot — "all below validated" can be
                                    // observed without ever holding
                                    // simultaneously — so instead of trusting
                                    // one racy observation, the iteration is
                                    // retried and only a fault that survives
                                    // MAX_FAULT_STREAK consecutive
                                    // incarnations (each over fresher state,
                                    // with every lower iteration observed
                                    // validated) is reported as the body's.
                                    match sched.highest_unvalidated_below(iteration) {
                                        Some(dep) => {
                                            c.aborts.fetch_add(1, Ordering::Relaxed);
                                            c.faults_retried.fetch_add(1, Ordering::Relaxed);
                                            rec.instant(
                                                "spec.pool",
                                                "spec.retry",
                                                &[
                                                    ("iteration", iteration.into()),
                                                    ("blocked_on", dep.into()),
                                                    ("reason", "speculative-fault".into()),
                                                ],
                                            );
                                            sched.abort_on_dependency(iteration, dep);
                                        }
                                        None => {
                                            let streak = {
                                                let mut slot = slots[iteration]
                                                    .lock()
                                                    .expect("iteration slot poisoned");
                                                slot.fault_streak += 1;
                                                slot.fault_streak
                                            };
                                            if iteration == 0 || streak >= MAX_FAULT_STREAK {
                                                rec.instant(
                                                    "spec.pool",
                                                    "spec.abort",
                                                    &[
                                                        ("iteration", iteration.into()),
                                                        ("reason", "genuine-fault".into()),
                                                    ],
                                                );
                                                poison.set(SpecError::Body(e));
                                            } else {
                                                c.aborts.fetch_add(1, Ordering::Relaxed);
                                                c.faults_retried.fetch_add(1, Ordering::Relaxed);
                                                rec.instant(
                                                    "spec.pool",
                                                    "spec.retry",
                                                    &[
                                                        ("iteration", iteration.into()),
                                                        ("streak", streak.into()),
                                                        ("reason", "consistent-fault".into()),
                                                    ],
                                                );
                                                sched.abort_and_retry(iteration);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        Task::Validation {
                            iteration,
                            incarnation,
                        } => {
                            c.validations.fetch_add(1, Ordering::Relaxed);
                            let mut span = rec
                                .span("spec.pool", "spec.validate")
                                .arg("iteration", iteration)
                                .arg("incarnation", incarnation);
                            // Epoch first, then the reads: if a lower
                            // iteration re-records between the snapshot and
                            // the verdict, `finish_validation_ok` rejects
                            // the stale pass and the lowered validation
                            // frontier re-delivers the task.
                            let epoch = sched.validation_epoch(iteration);
                            let read_set = slots[iteration]
                                .lock()
                                .expect("iteration slot poisoned")
                                .read_set
                                .clone();
                            let ok = validate(mv, base, iteration, &read_set);
                            span.push_arg("ok", ok);
                            if ok {
                                let _ = sched.finish_validation_ok(iteration, incarnation, epoch);
                            } else if sched.try_validation_abort(iteration, incarnation) {
                                c.aborts.fetch_add(1, Ordering::Relaxed);
                                rec.instant(
                                    "spec.pool",
                                    "spec.abort",
                                    &[
                                        ("iteration", iteration.into()),
                                        ("reason", "validation-fail".into()),
                                    ],
                                );
                                // Estimates must be in place before the next
                                // incarnation can be claimed.
                                mv.convert_writes_to_estimates(iteration, 0);
                                sched.finish_abort(iteration);
                            }
                            // A stale task (the iteration re-executed since
                            // the pop) is simply dropped: the re-execution
                            // lowered the validation frontier, so a fresh
                            // task exists.
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = poison.error.lock().expect("poison slot").take() {
        return Err(e);
    }
    debug_assert!(sched.done());

    let image = mv.final_image();
    let live_estimates = mv.live_estimates();
    let stats = counters.into_stats(iterations as u64, mv.stats().words);
    let payloads: Vec<P> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("iteration slot poisoned")
                .payload
                .expect("validated iteration has a payload")
        })
        .collect();
    Ok(PooledOutcome {
        stats,
        image,
        payloads,
        threads_used: workers,
        live_estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_vm::{FlatMemory, GuestMemory};

    fn cfg() -> SpecConfig {
        SpecConfig::default()
    }

    /// Disjoint iterations over 4 real threads: full parallelism, serial
    /// image.
    #[test]
    fn disjoint_iterations_converge_without_aborts() {
        let mut base = FlatMemory::new();
        for i in 0..64u64 {
            base.write_u64(0x1000 + i * 8, i);
        }
        let out = run_speculative_pooled(
            &cfg(),
            4,
            &base,
            64,
            |i, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
                let addr = 0x1000 + i as u64 * 8;
                let v = view.read_u64(addr);
                view.write_u64(addr, v + 1);
                Ok(IterationRun {
                    cycles: 100,
                    payload: i,
                })
            },
        )
        .unwrap();
        assert_eq!(out.threads_used, 4);
        assert_eq!(out.live_estimates, 0);
        assert_eq!(out.payloads, (0..64).collect::<Vec<_>>());
        let mut committed = base.clone();
        for &(w, v) in &out.image {
            committed.write_u64(w, v);
        }
        for i in 0..64u64 {
            assert_eq!(committed.read_u64(0x1000 + i * 8), i + 1);
        }
    }

    /// A fully dependent chain raced across threads still converges to the
    /// serial result — the core Block-STM guarantee under real
    /// nondeterminism.
    #[test]
    fn dependent_chain_converges_to_serial_under_racing() {
        for _ in 0..4 {
            let mut base = FlatMemory::new();
            base.write_u64(0x2000, 0);
            let out = run_speculative_pooled(
                &cfg(),
                4,
                &base,
                32,
                |_i, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
                    let v = view.read_u64(0x2000);
                    view.write_u64(0x2000, v + 1);
                    Ok(IterationRun {
                        cycles: 10,
                        payload: (),
                    })
                },
            )
            .unwrap();
            assert_eq!(out.live_estimates, 0);
            assert_eq!(
                out.image
                    .iter()
                    .find(|(w, _)| *w == 0x2000)
                    .map(|(_, v)| *v),
                Some(32),
                "serial-equivalent result"
            );
        }
    }

    /// A body that faults on iteration 0 — consistent state by definition —
    /// surfaces as a genuine error (or, in an unlucky racing interleaving,
    /// as a budget abort; never as a wrong answer).
    #[test]
    fn fault_on_first_iteration_is_an_error() {
        let base = FlatMemory::new();
        let result = run_speculative_pooled(
            &cfg(),
            2,
            &base,
            4,
            |i, _view: &mut SpecView<'_, FlatMemory>| -> Result<IterationRun<()>, &'static str> {
                if i == 0 {
                    Err("boom")
                } else {
                    Ok(IterationRun {
                        cycles: 1,
                        payload: (),
                    })
                }
            },
        );
        match result {
            Err(SpecError::Body("boom")) | Err(SpecError::AbortLimit { .. }) => {}
            other => panic!("expected an error, got {other:?}"),
        }
    }

    /// Zero iterations are a no-op.
    #[test]
    fn empty_invocation_is_trivial() {
        let base = FlatMemory::new();
        let out = run_speculative_pooled(
            &cfg(),
            4,
            &base,
            0,
            |_, _: &mut SpecView<'_, FlatMemory>| -> Result<IterationRun<()>, ()> {
                unreachable!()
            },
        )
        .unwrap();
        assert!(out.image.is_empty());
        assert_eq!(out.threads_used, 0);
    }
}
