//! The collaborative scheduler: Block-STM's execution/validation task state
//! machine, shareable across OS worker threads, plus the virtual worker
//! lanes that account every task in virtual time.
//!
//! ## Thread safety
//!
//! Every method takes `&self`: the two task frontiers are atomics
//! (lowered with `fetch_min` when aborts invalidate downstream work), each
//! iteration's `(incarnation, status)` pair sits behind its own [`Mutex`],
//! and dependency lists are mutex-guarded per iteration — the shape of
//! `block-stm-revm`'s atomic scheduler. Driven from a single thread the
//! task sequence is bit-identical to the original sequential scheduler,
//! which keeps the deterministic virtual-time engine reproducible; driven
//! from many threads, transitions are serialised per iteration and stale
//! tasks are rejected by incarnation checks.
//!
//! ## The lost-wakeup window
//!
//! The racing pool resurfaces a classic Block-STM hazard the sequential
//! driver never hit: iteration *i* reads *j*'s estimate and goes to sleep on
//! *j* while, concurrently, *j* finishes re-executing and drains its
//! dependents — if *i* enqueues itself after the drain, nobody ever wakes it.
//! [`Scheduler::abort_on_dependency`] therefore (a) marks *i* `Aborting`
//! *before* inspecting *j*, and (b) inspects *j*'s status and appends to
//! *j*'s dependency list while holding *j*'s status lock, the same lock
//! [`Scheduler::finish_execution`] holds to publish `Executed` before it
//! drains. Either the enqueue happens before the status flip (the drain sees
//! it) or after (the enqueue sees `Executed` and resumes *i* immediately);
//! there is no in-between. The regression test
//! `dependency_resuming_between_finish_and_repop_is_not_lost` pins the
//! interleaving.

use crate::mv::{Incarnation, Iteration};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Lifecycle of one iteration's current incarnation.
///
/// ```text
/// ReadyToExecute(i) -> Executing(i) -> Executed(i) -> Validated(i)
///        ^                  |               |
///        |   (estimate read)|    (validation failure)
///        +--- Aborting <----+---------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The next incarnation may be dispatched.
    ReadyToExecute,
    /// An incarnation is executing.
    Executing,
    /// The latest incarnation finished and recorded its writes.
    Executed,
    /// The latest incarnation passed (lazy) validation.
    Validated,
    /// The incarnation was aborted and waits for a blocking iteration to
    /// re-execute before it is re-dispatched.
    Aborting,
}

/// A unit of work dispatched to a (virtual or OS-thread) worker lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Execute the named incarnation.
    Execution {
        /// Iteration to execute.
        iteration: Iteration,
        /// Incarnation number being dispatched.
        incarnation: Incarnation,
    },
    /// Validate the read set of the named iteration's latest incarnation.
    Validation {
        /// Iteration to validate.
        iteration: Iteration,
        /// Incarnation that was current when the task was popped; racing
        /// validators use it to reject the task if the iteration has been
        /// aborted and re-executed in the meantime.
        incarnation: Incarnation,
    },
}

#[derive(Debug, Clone, Copy)]
struct IterState {
    incarnation: Incarnation,
    status: Status,
    /// Bumped every time a *lower* iteration re-records or aborts (the
    /// demote sweep passes over this iteration): a racing validator that
    /// began before the bump validated against superseded multi-version
    /// state, and its verdict must not be allowed to stick. See
    /// [`Scheduler::finish_validation_ok`].
    revalidation_epoch: u64,
}

/// The collaborative scheduler (see the module docs for the concurrency
/// story).
///
/// Mirrors Block-STM's two shared counters: `execution_idx` is the next
/// iteration to consider for execution, `validation_idx` the next to consider
/// for validation; both are lowered when aborts invalidate downstream work.
/// Lower-indexed tasks are always preferred, and validation is preferred over
/// execution at equal depth, exactly like the reference scheduler.
#[derive(Debug)]
pub struct Scheduler {
    states: Vec<Mutex<IterState>>,
    execution_idx: AtomicUsize,
    validation_idx: AtomicUsize,
    /// `dependents[j]` = iterations blocked on an estimate written by `j`.
    /// Push only while holding `states[j]` (see the module docs).
    dependents: Vec<Mutex<Vec<Iteration>>>,
    validated: AtomicUsize,
}

impl Scheduler {
    /// A scheduler over `n` iterations, all ready for their first incarnation.
    #[must_use]
    pub fn new(n: usize) -> Scheduler {
        Scheduler {
            states: (0..n)
                .map(|_| {
                    Mutex::new(IterState {
                        incarnation: 0,
                        status: Status::ReadyToExecute,
                        revalidation_epoch: 0,
                    })
                })
                .collect(),
            execution_idx: AtomicUsize::new(0),
            validation_idx: AtomicUsize::new(0),
            dependents: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            validated: AtomicUsize::new(0),
        }
    }

    fn state(&self, iteration: Iteration) -> std::sync::MutexGuard<'_, IterState> {
        self.states[iteration]
            .lock()
            .expect("iteration state poisoned")
    }

    /// `true` once every iteration has validated. Stable under concurrency:
    /// all-validated means no incarnation is in flight, so no transition can
    /// demote anything again.
    #[must_use]
    pub fn done(&self) -> bool {
        self.validated.load(Ordering::SeqCst) == self.states.len()
    }

    /// Current status of an iteration.
    #[must_use]
    pub fn status(&self, iteration: Iteration) -> (Incarnation, bool) {
        let s = *self.state(iteration);
        (s.incarnation, s.status == Status::Validated)
    }

    /// Picks the next task, preferring the lower-indexed frontier and
    /// validation over execution at equal index (Block-STM's task order).
    pub fn next_task(&self) -> Option<Task> {
        if self.validation_idx.load(Ordering::SeqCst) <= self.execution_idx.load(Ordering::SeqCst) {
            self.next_validation().or_else(|| self.next_execution())
        } else {
            self.next_execution().or_else(|| self.next_validation())
        }
    }

    fn next_execution(&self) -> Option<Task> {
        loop {
            let i = self.execution_idx.fetch_add(1, Ordering::SeqCst);
            if i >= self.states.len() {
                return None;
            }
            let mut s = self.state(i);
            if s.status == Status::ReadyToExecute {
                s.status = Status::Executing;
                return Some(Task::Execution {
                    iteration: i,
                    incarnation: s.incarnation,
                });
            }
        }
    }

    fn next_validation(&self) -> Option<Task> {
        loop {
            let i = self.validation_idx.fetch_add(1, Ordering::SeqCst);
            if i >= self.states.len() {
                return None;
            }
            let s = self.state(i);
            if s.status == Status::Executed {
                return Some(Task::Validation {
                    iteration: i,
                    incarnation: s.incarnation,
                });
            }
        }
    }

    /// The executed incarnation finished and recorded its writes.
    /// `changed_locations` is `true` when the write set differs from the
    /// previous incarnation's (new or removed words): everything above must
    /// then be revalidated. Iterations blocked on this one are resumed.
    pub fn finish_execution(&self, iteration: Iteration, changed_locations: bool) {
        let incarnation = {
            let mut s = self.state(iteration);
            debug_assert_eq!(s.status, Status::Executing);
            s.status = Status::Executed;
            s.incarnation
        };
        if changed_locations || incarnation > 0 {
            self.demote_validated_above(iteration);
        }
        self.validation_idx.fetch_min(iteration, Ordering::SeqCst);
        // Drain dependents only after `Executed` is published under the
        // status lock: a racing `abort_on_dependency` either enqueued before
        // the flip (we see it here) or observed `Executed` and resumed its
        // iteration itself.
        let deps = {
            // Hold the status lock across the drain so a concurrent enqueue
            // cannot slip between the flip above and the take below.
            let _s = self.state(iteration);
            std::mem::take(
                &mut *self.dependents[iteration]
                    .lock()
                    .expect("dependency list poisoned"),
            )
        };
        for d in deps {
            self.resume(d);
        }
    }

    /// Records the validation verdict. On failure the iteration is scheduled
    /// for its next incarnation and every validated iteration above it is
    /// demoted (its reads may have observed the aborted writes).
    ///
    /// This is the single-coordinator entry point; racing validators use
    /// [`Scheduler::try_validation_abort`] / [`Scheduler::finish_abort`] /
    /// [`Scheduler::finish_validation_ok`] instead, which tolerate stale
    /// tasks.
    pub fn finish_validation(&self, iteration: Iteration, aborted: bool) {
        if aborted {
            // The same transition the racing handshake performs in two
            // steps; sharing `finish_abort` keeps the subtle
            // frontier-lowering/demote sequence in one place.
            {
                let mut s = self.state(iteration);
                debug_assert_eq!(s.status, Status::Executed);
                s.status = Status::Aborting;
            }
            self.finish_abort(iteration);
        } else {
            {
                let mut s = self.state(iteration);
                debug_assert_eq!(s.status, Status::Executed);
                s.status = Status::Validated;
            }
            self.validated.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Claims the right to abort `iteration`'s `incarnation` after a failed
    /// validation. Only one racing validator can win (the status moves to
    /// [`Status::Aborting`]); a validator holding a stale task — the
    /// iteration re-executed since the task was popped — loses and must drop
    /// the task. The winner converts the incarnation's writes to estimates
    /// and then calls [`Scheduler::finish_abort`].
    pub fn try_validation_abort(&self, iteration: Iteration, incarnation: Incarnation) -> bool {
        let mut s = self.state(iteration);
        if s.status == Status::Executed && s.incarnation == incarnation {
            s.status = Status::Aborting;
            true
        } else {
            false
        }
    }

    /// Completes a validation abort claimed via
    /// [`Scheduler::try_validation_abort`]: schedules the next incarnation
    /// and demotes/revalidates everything above.
    pub fn finish_abort(&self, iteration: Iteration) {
        {
            let mut s = self.state(iteration);
            debug_assert_eq!(s.status, Status::Aborting);
            s.status = Status::ReadyToExecute;
            s.incarnation += 1;
        }
        self.execution_idx.fetch_min(iteration, Ordering::SeqCst);
        self.demote_validated_above(iteration);
        self.validation_idx
            .fetch_min(iteration + 1, Ordering::SeqCst);
    }

    /// The iteration's current revalidation epoch. A racing validator must
    /// snapshot this *before* reading the multi-version store and hand it
    /// back to [`Scheduler::finish_validation_ok`]: if a lower iteration
    /// re-records or aborts in between, the demote sweep bumps the epoch and
    /// the stale pass-verdict is rejected (the lowered validation frontier
    /// guarantees a fresh task re-pops the iteration).
    #[must_use]
    pub fn validation_epoch(&self, iteration: Iteration) -> u64 {
        self.state(iteration).revalidation_epoch
    }

    /// Marks `iteration`'s `incarnation` validated. Returns `false` (and
    /// changes nothing) when the task is stale — the iteration was aborted
    /// and re-executed after the validation task was popped, or a lower
    /// iteration's re-record/abort bumped the revalidation epoch since the
    /// validator snapshotted `epoch` (its verdict was computed against
    /// superseded multi-version state). Without the epoch check a stale
    /// pass could stick permanently: the demote sweep only downgrades
    /// iterations already `Validated`, so a verdict landing *after* the
    /// sweep would never be revisited.
    pub fn finish_validation_ok(
        &self,
        iteration: Iteration,
        incarnation: Incarnation,
        epoch: u64,
    ) -> bool {
        {
            let mut s = self.state(iteration);
            if s.status != Status::Executed
                || s.incarnation != incarnation
                || s.revalidation_epoch != epoch
            {
                return false;
            }
            s.status = Status::Validated;
        }
        self.validated.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// The executing incarnation read an estimate written by `blocking` (or
    /// faulted on speculative state): abort it and wake it when `blocking`
    /// re-executes. If `blocking` has already re-executed, the iteration is
    /// resumed immediately. See the module docs for why the enqueue happens
    /// under `blocking`'s status lock.
    pub fn abort_on_dependency(&self, iteration: Iteration, blocking: Iteration) {
        debug_assert!(blocking < iteration);
        {
            let mut s = self.state(iteration);
            debug_assert_eq!(s.status, Status::Executing);
            s.status = Status::Aborting;
        }
        let resume_now = {
            let b = self.state(blocking);
            match b.status {
                Status::Executed | Status::Validated => true,
                _ => {
                    self.dependents[blocking]
                        .lock()
                        .expect("dependency list poisoned")
                        .push(iteration);
                    false
                }
            }
        };
        if resume_now {
            self.resume(iteration);
        }
    }

    /// The executing incarnation faulted on speculative state with no
    /// identifiable blocking iteration (racing pool only): re-dispatch it
    /// immediately as the next incarnation.
    pub fn abort_and_retry(&self, iteration: Iteration) {
        {
            let mut s = self.state(iteration);
            debug_assert_eq!(s.status, Status::Executing);
            s.status = Status::ReadyToExecute;
            s.incarnation += 1;
        }
        self.execution_idx.fetch_min(iteration, Ordering::SeqCst);
    }

    /// The highest iteration below `iteration` that has not validated yet —
    /// the conservative dependency for an execution fault on speculative
    /// state.
    #[must_use]
    pub fn highest_unvalidated_below(&self, iteration: Iteration) -> Option<Iteration> {
        (0..iteration)
            .rev()
            .find(|&j| self.state(j).status != Status::Validated)
    }

    fn resume(&self, iteration: Iteration) {
        {
            let mut s = self.state(iteration);
            // A dependent can be drained twice in pathological racing
            // interleavings (premature wake, re-enqueue, real wake); resuming
            // is a no-op unless the iteration is still parked. The sequential
            // driver never takes the lenient branch.
            if s.status != Status::Aborting {
                return;
            }
            s.status = Status::ReadyToExecute;
            s.incarnation += 1;
        }
        self.execution_idx.fetch_min(iteration, Ordering::SeqCst);
    }

    fn demote_validated_above(&self, iteration: Iteration) {
        for j in iteration + 1..self.states.len() {
            let demoted = {
                let mut s = self.state(j);
                // Invalidate in-flight validators of `j` whatever its
                // status: an `Executed` iteration mid-validation cannot be
                // demoted here (it is not `Validated` yet), so the epoch is
                // how its validator learns its verdict is stale.
                s.revalidation_epoch += 1;
                if s.status == Status::Validated {
                    s.status = Status::Executed;
                    true
                } else {
                    false
                }
            };
            if demoted {
                self.validated.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// The worker-lane abstraction: a set of `count` workers whose occupancy is
/// tracked in modelled (virtual) cycles.
///
/// Both execution substrates drive their parallelism accounting through this
/// one interface: the speculation engine charges every execution/validation
/// task to the least-loaded lane, and `janus-dbm`'s execution backends charge
/// each loop chunk the same way — whether the chunk then runs inline on the
/// coordinating thread (virtual-time backend) or on a real OS worker thread
/// (native-threads backend). Keeping the *modelled* clock shared between the
/// two is what makes their reported cycle counts comparable.
pub trait LaneSet {
    /// Number of worker lanes.
    fn lane_count(&self) -> usize;
    /// The modelled time at which the next task would start (the least-loaded
    /// lane's clock).
    fn next_start(&self) -> u64;
    /// Charges `cost` modelled cycles to the least-loaded lane and returns
    /// the task's completion time.
    fn charge(&mut self, cost: u64) -> u64;
    /// The modelled makespan: the busiest lane's clock.
    fn makespan(&self) -> u64;
}

/// The virtual worker lanes: `lanes[k]` is the virtual time up to which lane
/// `k` is busy. Tasks are charged greedily to the least-loaded lane, which
/// keeps the schedule deterministic while modelling `lanes.len()`-way
/// parallel progress.
#[derive(Debug)]
pub struct Lanes {
    clocks: Vec<u64>,
}

impl Lanes {
    /// `count` idle lanes.
    #[must_use]
    pub fn new(count: u32) -> Lanes {
        Lanes {
            clocks: vec![0; count.max(1) as usize],
        }
    }

    /// The virtual time at which the next task would start (the least-loaded
    /// lane's clock).
    #[must_use]
    pub fn next_start(&self) -> u64 {
        self.clocks.iter().copied().min().unwrap_or(0)
    }

    /// Charges `cost` virtual cycles to the least-loaded lane and returns the
    /// task's completion time. Every task advances time by at least one cycle
    /// so repeated retries always observe strictly later state.
    pub fn charge(&mut self, cost: u64) -> u64 {
        let lane = self
            .clocks
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.clocks[lane] += cost.max(1);
        self.clocks[lane]
    }

    /// The virtual makespan: the busiest lane's clock.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }
}

impl LaneSet for Lanes {
    fn lane_count(&self) -> usize {
        self.clocks.len()
    }

    fn next_start(&self) -> u64 {
        Lanes::next_start(self)
    }

    fn charge(&mut self, cost: u64) -> u64 {
        Lanes::charge(self, cost)
    }

    fn makespan(&self) -> u64 {
        Lanes::makespan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_iterations_execute_then_validate_in_order() {
        let s = Scheduler::new(3);
        let mut log = Vec::new();
        while !s.done() {
            match s.next_task().expect("work remains") {
                Task::Execution { iteration, .. } => {
                    log.push(format!("E{iteration}"));
                    s.finish_execution(iteration, true);
                }
                Task::Validation { iteration, .. } => {
                    log.push(format!("V{iteration}"));
                    s.finish_validation(iteration, false);
                }
            }
        }
        assert_eq!(log, ["E0", "V0", "E1", "V1", "E2", "V2"]);
    }

    #[test]
    fn aborted_validation_re_executes_with_a_higher_incarnation() {
        let s = Scheduler::new(2);
        let Some(Task::Execution { iteration: 0, .. }) = s.next_task() else {
            panic!("expected execution of 0");
        };
        s.finish_execution(0, true);
        let Some(Task::Validation { iteration: 0, .. }) = s.next_task() else {
            panic!("expected validation of 0");
        };
        s.finish_validation(0, true);
        match s.next_task() {
            Some(Task::Execution {
                iteration: 0,
                incarnation: 1,
            }) => {}
            other => panic!("expected re-execution of 0, got {other:?}"),
        }
    }

    #[test]
    fn dependency_wakes_when_blocking_iteration_finishes() {
        let s = Scheduler::new(2);
        // Execute 0, abort its validation so 0 becomes ReadyToExecute(1).
        assert!(matches!(
            s.next_task(),
            Some(Task::Execution { iteration: 0, .. })
        ));
        s.finish_execution(0, true);
        assert!(matches!(
            s.next_task(),
            Some(Task::Validation { iteration: 0, .. })
        ));
        s.finish_validation(0, true);
        // 1 executes, reads 0's estimate, blocks on 0.
        // (Simulate: dispatch 0 first per order, then force the scenario.)
        let t = s.next_task().expect("task");
        let Task::Execution { iteration: 0, .. } = t else {
            panic!("0 re-executes first, got {t:?}");
        };
        // While 0 is executing, 1 is dispatched... single-threaded driver
        // processes one at a time, so instead finish 0 and verify 1 runs.
        s.finish_execution(0, true);
        assert!(matches!(
            s.next_task(),
            Some(Task::Validation { iteration: 0, .. })
        ));
        s.finish_validation(0, false);
        assert!(matches!(
            s.next_task(),
            Some(Task::Execution { iteration: 1, .. })
        ));
        s.finish_execution(1, true);
        assert!(matches!(
            s.next_task(),
            Some(Task::Validation { iteration: 1, .. })
        ));
        s.finish_validation(1, false);
        assert!(s.done());
    }

    #[test]
    fn abort_demotes_validated_iterations_above() {
        let s = Scheduler::new(2);
        // Run both iterations to Validated.
        for _ in 0..2 {
            match s.next_task().unwrap() {
                Task::Execution { iteration, .. } => s.finish_execution(iteration, true),
                Task::Validation { iteration, .. } => s.finish_validation(iteration, false),
            }
        }
        for _ in 0..2 {
            match s.next_task().unwrap() {
                Task::Execution { iteration, .. } => s.finish_execution(iteration, true),
                Task::Validation { iteration, .. } => s.finish_validation(iteration, false),
            }
        }
        assert!(s.done());
    }

    /// Regression test for the lost-wakeup window (ISSUE 4, satellite 4):
    /// with racing workers, iteration 1 can decide to block on iteration 0
    /// *after* 0 has already finished its re-execution and drained its
    /// dependents — under the old single-threaded decrement ordering the
    /// enqueue would never be seen and 1 would sleep forever. The scheduler
    /// must instead observe 0's `Executed` status and resume 1 immediately.
    #[test]
    fn dependency_resuming_between_finish_and_repop_is_not_lost() {
        let s = Scheduler::new(2);
        // Both iterations claimed concurrently (only possible with the
        // thread-safe `&self` API — the sequential driver never holds two
        // execution tasks at once).
        let Some(Task::Execution { iteration: 0, .. }) = s.next_task() else {
            panic!("expected execution of 0");
        };
        let Some(Task::Execution { iteration: 1, .. }) = s.next_task() else {
            panic!("expected execution of 1");
        };
        // Worker A finishes 0 and drains its (empty) dependency list.
        s.finish_execution(0, true);
        // Worker B, which read 0's estimate earlier in its execution, only
        // now reports the dependency — after the drain already happened.
        s.abort_on_dependency(1, 0);
        // 1 must not be parked: it is immediately re-dispatchable with a
        // bumped incarnation.
        let (incarnation, validated) = s.status(1);
        assert_eq!(incarnation, 1, "1 must have been resumed, not parked");
        assert!(!validated);
        let mut tasks = Vec::new();
        while !s.done() {
            match s.next_task().expect("no task may be lost") {
                Task::Execution { iteration, .. } => {
                    tasks.push(format!("E{iteration}"));
                    s.finish_execution(iteration, false);
                }
                Task::Validation { iteration, .. } => {
                    tasks.push(format!("V{iteration}"));
                    s.finish_validation(iteration, false);
                }
            }
        }
        assert!(
            tasks.contains(&"E1".to_string()),
            "1's next incarnation must be dispatched ({tasks:?})"
        );
    }

    /// The racing-validator handshake: only one validator may win the abort
    /// of a given incarnation, stale winners are rejected by the incarnation
    /// check, and `finish_validation_ok` refuses tasks for re-executed
    /// iterations.
    #[test]
    fn stale_validation_tasks_are_rejected() {
        let s = Scheduler::new(1);
        let Some(Task::Execution { iteration: 0, .. }) = s.next_task() else {
            panic!("expected execution of 0");
        };
        s.finish_execution(0, true);
        let Some(Task::Validation {
            iteration: 0,
            incarnation: 0,
        }) = s.next_task()
        else {
            panic!("expected validation of (0, 0)");
        };
        // Two racing validators popped the same task; the first wins.
        assert!(s.try_validation_abort(0, 0));
        assert!(!s.try_validation_abort(0, 0), "second aborter must lose");
        s.finish_abort(0);
        // The stale validator's success path must also be rejected now.
        let epoch = s.validation_epoch(0);
        assert!(
            !s.finish_validation_ok(0, 0, epoch),
            "stale ok must be rejected"
        );
        // Re-execute and validate for real.
        let Some(Task::Execution {
            iteration: 0,
            incarnation: 1,
        }) = s.next_task()
        else {
            panic!("expected re-execution of 0");
        };
        s.finish_execution(0, false);
        let Some(Task::Validation {
            iteration: 0,
            incarnation: 1,
        }) = s.next_task()
        else {
            panic!("expected validation of (0, 1)");
        };
        let epoch = s.validation_epoch(0);
        assert!(s.finish_validation_ok(0, 1, epoch));
        assert!(s.done());
    }

    /// Regression test for the lost-revalidation race: iteration 1's
    /// validator snapshots its epoch and verdict *before* iteration 0
    /// re-records writes; 0's demote sweep runs while 1 is merely `Executed`
    /// (mid-validation), so nothing is demoted — the epoch bump is the only
    /// thing standing between the stale pass and a permanently-validated
    /// iteration whose reads were never checked against 0's new writes.
    #[test]
    fn stale_pass_verdict_after_lower_rerecord_is_rejected() {
        let s = Scheduler::new(2);
        // Claim both iterations; finish both executions.
        let Some(Task::Execution { iteration: 0, .. }) = s.next_task() else {
            panic!("expected execution of 0");
        };
        let Some(Task::Execution { iteration: 1, .. }) = s.next_task() else {
            panic!("expected execution of 1");
        };
        s.finish_execution(0, true);
        s.finish_execution(1, true);
        // A validator pops (1, 0) and snapshots the epoch...
        let epoch = s.validation_epoch(1);
        // ...then 0 fails its own validation, re-executes and re-records —
        // the demote sweep passes over 1 (still Executed: no demote) and
        // bumps its epoch.
        assert!(s.try_validation_abort(0, 0));
        s.finish_abort(0);
        // Drive until 0 has re-recorded. Validation tasks for 1 popped along
        // the way model racing validators whose verdicts are still in
        // flight: dropping them is exactly what a stalled validator looks
        // like, and the re-record below must re-deliver the work.
        loop {
            match s.next_task().expect("work remains") {
                Task::Execution { iteration: 0, .. } => {
                    s.finish_execution(0, true);
                    break;
                }
                Task::Validation { iteration: 1, .. } => {}
                other => panic!("unexpected task {other:?}"),
            }
        }
        // The validator's stale pass must not stick.
        assert!(
            !s.finish_validation_ok(1, 0, epoch),
            "a pass computed against pre-re-record state must be rejected"
        );
        let (_, validated) = s.status(1);
        assert!(!validated, "1 must await a fresh validation task");
        // And a fresh task for 1 is re-delivered by the lowered frontier.
        let mut saw_revalidation = false;
        while !s.done() {
            match s.next_task().expect("no task may be lost") {
                Task::Execution { iteration, .. } => s.finish_execution(iteration, false),
                Task::Validation {
                    iteration,
                    incarnation,
                } => {
                    saw_revalidation |= iteration == 1;
                    let epoch = s.validation_epoch(iteration);
                    assert!(s.finish_validation_ok(iteration, incarnation, epoch));
                }
            }
        }
        assert!(
            saw_revalidation,
            "1 must be revalidated against fresh state"
        );
    }

    /// Hammer the scheduler from real threads: every iteration must end up
    /// validated exactly once, with no lost or duplicated work, for any
    /// interleaving the OS produces.
    #[test]
    fn concurrent_drive_terminates_with_all_validated() {
        for _ in 0..8 {
            let n = 24;
            let s = Scheduler::new(n);
            let executed = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| loop {
                        if s.done() {
                            break;
                        }
                        match s.next_task() {
                            Some(Task::Execution { iteration, .. }) => {
                                executed.fetch_add(1, Ordering::SeqCst);
                                s.finish_execution(iteration, true);
                            }
                            Some(Task::Validation {
                                iteration,
                                incarnation,
                            }) => {
                                let epoch = s.validation_epoch(iteration);
                                let _ = s.finish_validation_ok(iteration, incarnation, epoch);
                            }
                            None => std::thread::yield_now(),
                        }
                    });
                }
            });
            assert!(s.done());
            assert!(executed.load(Ordering::SeqCst) >= n);
            for i in 0..n {
                assert!(s.status(i).1, "iteration {i} must be validated");
            }
        }
    }

    #[test]
    fn lanes_spread_cost_and_report_the_makespan() {
        let mut lanes = Lanes::new(2);
        assert_eq!(lanes.next_start(), 0);
        lanes.charge(10);
        assert_eq!(lanes.next_start(), 0, "second lane is still idle");
        lanes.charge(4);
        lanes.charge(4); // goes to the lane at 4
        assert_eq!(lanes.makespan(), 10);
        assert_eq!(lanes.next_start(), 8);
        let mut one = Lanes::new(0);
        assert_eq!(one.charge(0), 1, "cost is at least one cycle");
    }
}
