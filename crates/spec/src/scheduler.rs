//! The collaborative scheduler: Block-STM's execution/validation task state
//! machine, driven deterministically from a single host thread, plus the
//! virtual worker lanes that account every task in virtual time.

use crate::mv::{Incarnation, Iteration};

/// Lifecycle of one iteration's current incarnation.
///
/// ```text
/// ReadyToExecute(i) -> Executing(i) -> Executed(i) -> Validated(i)
///        ^                  |               |
///        |   (estimate read)|    (validation failure)
///        +--- Aborting <----+---------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The next incarnation may be dispatched.
    ReadyToExecute,
    /// An incarnation is executing.
    Executing,
    /// The latest incarnation finished and recorded its writes.
    Executed,
    /// The latest incarnation passed (lazy) validation.
    Validated,
    /// The incarnation was aborted and waits for a blocking iteration to
    /// re-execute before it is re-dispatched.
    Aborting,
}

/// A unit of work dispatched to a virtual lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Execute the named incarnation.
    Execution {
        /// Iteration to execute.
        iteration: Iteration,
        /// Incarnation number being dispatched.
        incarnation: Incarnation,
    },
    /// Validate the read set of the named iteration's latest incarnation.
    Validation {
        /// Iteration to validate.
        iteration: Iteration,
    },
}

#[derive(Debug, Clone, Copy)]
struct IterState {
    incarnation: Incarnation,
    status: Status,
}

/// The deterministic collaborative scheduler.
///
/// Mirrors Block-STM's two shared counters: `execution_idx` is the next
/// iteration to consider for execution, `validation_idx` the next to consider
/// for validation; both are lowered when aborts invalidate downstream work.
/// Lower-indexed tasks are always preferred, and validation is preferred over
/// execution at equal depth, exactly like the reference scheduler.
#[derive(Debug)]
pub struct Scheduler {
    states: Vec<IterState>,
    execution_idx: usize,
    validation_idx: usize,
    /// `dependents[j]` = iterations blocked on an estimate written by `j`.
    dependents: Vec<Vec<Iteration>>,
    validated: usize,
}

impl Scheduler {
    /// A scheduler over `n` iterations, all ready for their first incarnation.
    #[must_use]
    pub fn new(n: usize) -> Scheduler {
        Scheduler {
            states: vec![
                IterState {
                    incarnation: 0,
                    status: Status::ReadyToExecute,
                };
                n
            ],
            execution_idx: 0,
            validation_idx: 0,
            dependents: vec![Vec::new(); n],
            validated: 0,
        }
    }

    /// `true` once every iteration has validated.
    #[must_use]
    pub fn done(&self) -> bool {
        self.validated == self.states.len()
    }

    /// Current status of an iteration.
    #[must_use]
    pub fn status(&self, iteration: Iteration) -> (Incarnation, bool) {
        let s = self.states[iteration];
        (s.incarnation, s.status == Status::Validated)
    }

    /// Picks the next task, preferring the lower-indexed frontier and
    /// validation over execution at equal index (Block-STM's task order).
    pub fn next_task(&mut self) -> Option<Task> {
        if self.validation_idx <= self.execution_idx {
            self.next_validation().or_else(|| self.next_execution())
        } else {
            self.next_execution().or_else(|| self.next_validation())
        }
    }

    fn next_execution(&mut self) -> Option<Task> {
        while self.execution_idx < self.states.len() {
            let i = self.execution_idx;
            self.execution_idx += 1;
            let s = &mut self.states[i];
            if s.status == Status::ReadyToExecute {
                s.status = Status::Executing;
                return Some(Task::Execution {
                    iteration: i,
                    incarnation: s.incarnation,
                });
            }
        }
        None
    }

    fn next_validation(&mut self) -> Option<Task> {
        while self.validation_idx < self.states.len() {
            let i = self.validation_idx;
            self.validation_idx += 1;
            if self.states[i].status == Status::Executed {
                return Some(Task::Validation { iteration: i });
            }
        }
        None
    }

    /// The executed incarnation finished and recorded its writes.
    /// `changed_locations` is `true` when the write set differs from the
    /// previous incarnation's (new or removed words): everything above must
    /// then be revalidated. Iterations blocked on this one are resumed.
    pub fn finish_execution(&mut self, iteration: Iteration, changed_locations: bool) {
        debug_assert_eq!(self.states[iteration].status, Status::Executing);
        self.states[iteration].status = Status::Executed;
        if changed_locations || self.states[iteration].incarnation > 0 {
            self.demote_validated_above(iteration);
        }
        self.validation_idx = self.validation_idx.min(iteration);
        for d in std::mem::take(&mut self.dependents[iteration]) {
            self.resume(d);
        }
    }

    /// Records the validation verdict. On failure the iteration is scheduled
    /// for its next incarnation and every validated iteration above it is
    /// demoted (its reads may have observed the aborted writes).
    pub fn finish_validation(&mut self, iteration: Iteration, aborted: bool) {
        debug_assert_eq!(self.states[iteration].status, Status::Executed);
        if aborted {
            let s = &mut self.states[iteration];
            s.status = Status::ReadyToExecute;
            s.incarnation += 1;
            self.execution_idx = self.execution_idx.min(iteration);
            self.demote_validated_above(iteration);
            self.validation_idx = self.validation_idx.min(iteration + 1);
        } else {
            self.states[iteration].status = Status::Validated;
            self.validated += 1;
        }
    }

    /// The executing incarnation read an estimate written by `blocking` (or
    /// faulted on speculative state): abort it and wake it when `blocking`
    /// re-executes. If `blocking` has already re-executed, the iteration is
    /// resumed immediately.
    pub fn abort_on_dependency(&mut self, iteration: Iteration, blocking: Iteration) {
        debug_assert_eq!(self.states[iteration].status, Status::Executing);
        self.states[iteration].status = Status::Aborting;
        match self.states[blocking].status {
            Status::Executed | Status::Validated => self.resume(iteration),
            _ => self.dependents[blocking].push(iteration),
        }
    }

    /// The highest iteration below `iteration` that has not validated yet —
    /// the conservative dependency for an execution fault on speculative
    /// state.
    #[must_use]
    pub fn highest_unvalidated_below(&self, iteration: Iteration) -> Option<Iteration> {
        (0..iteration)
            .rev()
            .find(|&j| self.states[j].status != Status::Validated)
    }

    fn resume(&mut self, iteration: Iteration) {
        let s = &mut self.states[iteration];
        debug_assert_eq!(s.status, Status::Aborting);
        s.status = Status::ReadyToExecute;
        s.incarnation += 1;
        self.execution_idx = self.execution_idx.min(iteration);
    }

    fn demote_validated_above(&mut self, iteration: Iteration) {
        for s in &mut self.states[iteration + 1..] {
            if s.status == Status::Validated {
                s.status = Status::Executed;
                self.validated -= 1;
            }
        }
    }
}

/// The worker-lane abstraction: a set of `count` workers whose occupancy is
/// tracked in modelled (virtual) cycles.
///
/// Both execution substrates drive their parallelism accounting through this
/// one interface: the speculation engine charges every execution/validation
/// task to the least-loaded lane, and `janus-dbm`'s execution backends charge
/// each loop chunk the same way — whether the chunk then runs inline on the
/// coordinating thread (virtual-time backend) or on a real OS worker thread
/// (native-threads backend). Keeping the *modelled* clock shared between the
/// two is what makes their reported cycle counts comparable.
pub trait LaneSet {
    /// Number of worker lanes.
    fn lane_count(&self) -> usize;
    /// The modelled time at which the next task would start (the least-loaded
    /// lane's clock).
    fn next_start(&self) -> u64;
    /// Charges `cost` modelled cycles to the least-loaded lane and returns
    /// the task's completion time.
    fn charge(&mut self, cost: u64) -> u64;
    /// The modelled makespan: the busiest lane's clock.
    fn makespan(&self) -> u64;
}

/// The virtual worker lanes: `lanes[k]` is the virtual time up to which lane
/// `k` is busy. Tasks are charged greedily to the least-loaded lane, which
/// keeps the schedule deterministic while modelling `lanes.len()`-way
/// parallel progress.
#[derive(Debug)]
pub struct Lanes {
    clocks: Vec<u64>,
}

impl Lanes {
    /// `count` idle lanes.
    #[must_use]
    pub fn new(count: u32) -> Lanes {
        Lanes {
            clocks: vec![0; count.max(1) as usize],
        }
    }

    /// The virtual time at which the next task would start (the least-loaded
    /// lane's clock).
    #[must_use]
    pub fn next_start(&self) -> u64 {
        self.clocks.iter().copied().min().unwrap_or(0)
    }

    /// Charges `cost` virtual cycles to the least-loaded lane and returns the
    /// task's completion time. Every task advances time by at least one cycle
    /// so repeated retries always observe strictly later state.
    pub fn charge(&mut self, cost: u64) -> u64 {
        let lane = self
            .clocks
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.clocks[lane] += cost.max(1);
        self.clocks[lane]
    }

    /// The virtual makespan: the busiest lane's clock.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }
}

impl LaneSet for Lanes {
    fn lane_count(&self) -> usize {
        self.clocks.len()
    }

    fn next_start(&self) -> u64 {
        Lanes::next_start(self)
    }

    fn charge(&mut self, cost: u64) -> u64 {
        Lanes::charge(self, cost)
    }

    fn makespan(&self) -> u64 {
        Lanes::makespan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_iterations_execute_then_validate_in_order() {
        let mut s = Scheduler::new(3);
        let mut log = Vec::new();
        while !s.done() {
            match s.next_task().expect("work remains") {
                Task::Execution { iteration, .. } => {
                    log.push(format!("E{iteration}"));
                    s.finish_execution(iteration, true);
                }
                Task::Validation { iteration } => {
                    log.push(format!("V{iteration}"));
                    s.finish_validation(iteration, false);
                }
            }
        }
        assert_eq!(log, ["E0", "V0", "E1", "V1", "E2", "V2"]);
    }

    #[test]
    fn aborted_validation_re_executes_with_a_higher_incarnation() {
        let mut s = Scheduler::new(2);
        let Some(Task::Execution { iteration: 0, .. }) = s.next_task() else {
            panic!("expected execution of 0");
        };
        s.finish_execution(0, true);
        let Some(Task::Validation { iteration: 0 }) = s.next_task() else {
            panic!("expected validation of 0");
        };
        s.finish_validation(0, true);
        match s.next_task() {
            Some(Task::Execution {
                iteration: 0,
                incarnation: 1,
            }) => {}
            other => panic!("expected re-execution of 0, got {other:?}"),
        }
    }

    #[test]
    fn dependency_wakes_when_blocking_iteration_finishes() {
        let mut s = Scheduler::new(2);
        // Execute 0, abort its validation so 0 becomes ReadyToExecute(1).
        assert!(matches!(
            s.next_task(),
            Some(Task::Execution { iteration: 0, .. })
        ));
        s.finish_execution(0, true);
        assert!(matches!(
            s.next_task(),
            Some(Task::Validation { iteration: 0 })
        ));
        s.finish_validation(0, true);
        // 1 executes, reads 0's estimate, blocks on 0.
        // (Simulate: dispatch 0 first per order, then force the scenario.)
        let t = s.next_task().expect("task");
        let Task::Execution { iteration: 0, .. } = t else {
            panic!("0 re-executes first, got {t:?}");
        };
        // While 0 is executing, 1 is dispatched... single-threaded driver
        // processes one at a time, so instead finish 0 and verify 1 runs.
        s.finish_execution(0, true);
        assert!(matches!(
            s.next_task(),
            Some(Task::Validation { iteration: 0 })
        ));
        s.finish_validation(0, false);
        assert!(matches!(
            s.next_task(),
            Some(Task::Execution { iteration: 1, .. })
        ));
        s.finish_execution(1, true);
        assert!(matches!(
            s.next_task(),
            Some(Task::Validation { iteration: 1 })
        ));
        s.finish_validation(1, false);
        assert!(s.done());
    }

    #[test]
    fn abort_demotes_validated_iterations_above() {
        let mut s = Scheduler::new(2);
        // Run both iterations to Validated.
        for _ in 0..2 {
            match s.next_task().unwrap() {
                Task::Execution { iteration, .. } => s.finish_execution(iteration, true),
                Task::Validation { iteration } => s.finish_validation(iteration, false),
            }
        }
        for _ in 0..2 {
            match s.next_task().unwrap() {
                Task::Execution { iteration, .. } => s.finish_execution(iteration, true),
                Task::Validation { iteration } => s.finish_validation(iteration, false),
            }
        }
        assert!(s.done());
    }

    #[test]
    fn lanes_spread_cost_and_report_the_makespan() {
        let mut lanes = Lanes::new(2);
        assert_eq!(lanes.next_start(), 0);
        lanes.charge(10);
        assert_eq!(lanes.next_start(), 0, "second lane is still idle");
        lanes.charge(4);
        lanes.charge(4); // goes to the lane at 4
        assert_eq!(lanes.makespan(), 10);
        assert_eq!(lanes.next_start(), 8);
        let mut one = Lanes::new(0);
        assert_eq!(one.charge(0), 1, "cost is at least one cycle");
    }
}
