//! Property-based convergence test for the speculative engine: for *any*
//! random mix of per-iteration reads, writes and read-modify-writes over a
//! small shared address pool — i.e. any conflict structure, hence any
//! abort/validation interleaving the scheduler can produce — the committed
//! memory image must equal the serial execution's final memory, and every
//! iteration's validated payload must be its own.

use janus_spec::{run_speculative, run_speculative_pooled, IterationRun, SpecConfig, SpecView};
use janus_vm::{FlatMemory, GuestMemory};
use proptest::prelude::*;

/// One guest "instruction" of a synthetic iteration body.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `acc += mem[src]`
    Load { src: u64 },
    /// `mem[dst] = acc + k`
    Store { dst: u64, k: u64 },
    /// `mem[dst] += mem[src] + k` (a dependent read-modify-write)
    AddTo { src: u64, dst: u64, k: u64 },
}

const POOL_BASE: u64 = 0x4000;

fn arb_op(pool: u64) -> impl Strategy<Value = Op> {
    let slot = move || (0..pool).prop_map(|s| POOL_BASE + s * 8);
    prop_oneof![
        slot().prop_map(|src| Op::Load { src }),
        (slot(), 0u64..50).prop_map(|(dst, k)| Op::Store { dst, k }),
        (slot(), slot(), 0u64..50).prop_map(|(src, dst, k)| Op::AddTo { src, dst, k }),
    ]
}

/// Interprets one iteration's ops against any memory; returns the
/// accumulator (used as the iteration payload).
fn interpret<M: GuestMemory>(iteration: usize, ops: &[Op], mem: &mut M) -> u64 {
    let mut acc = iteration as u64;
    for op in ops {
        match *op {
            Op::Load { src } => acc = acc.wrapping_add(mem.read_u64(src)),
            Op::Store { dst, k } => mem.write_u64(dst, acc.wrapping_add(k)),
            Op::AddTo { src, dst, k } => {
                let v = mem.read_u64(src).wrapping_add(k).wrapping_add(acc);
                mem.write_u64(dst, v);
            }
        }
    }
    acc
}

fn initial_memory(pool: u64) -> FlatMemory {
    let mut m = FlatMemory::new();
    for s in 0..pool {
        m.write_u64(POOL_BASE + s * 8, s.wrapping_mul(0x9e37) ^ 0x55);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Speculative execution == serial execution, for any program and any
    /// lane count.
    #[test]
    fn speculative_execution_converges_to_serial(
        programs in proptest::collection::vec(
            proptest::collection::vec(arb_op(6), 1..6),
            1..24,
        ),
        lanes in 1u32..9,
    ) {
        let pool = 6u64;
        // Serial reference.
        let mut serial = initial_memory(pool);
        let mut serial_accs = Vec::new();
        for (i, ops) in programs.iter().enumerate() {
            serial_accs.push(interpret(i, ops, &mut serial));
        }

        // Speculative run.
        let mut spec_mem = initial_memory(pool);
        let config = SpecConfig { lanes, ..SpecConfig::default() };
        let out = run_speculative(
            &config,
            &mut spec_mem,
            programs.len(),
            |i, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
                let acc = interpret(i, &programs[i], view);
                Ok(IterationRun { cycles: 10 + programs[i].len() as u64, payload: acc })
            },
        )
        .expect("synthetic bodies never fault");

        // Final memory converged to the serial image.
        for s in 0..pool {
            let addr = POOL_BASE + s * 8;
            prop_assert_eq!(
                spec_mem.read_u64(addr),
                serial.read_u64(addr),
                "word {} diverged (lanes={}, aborts={})",
                s, lanes, out.stats.aborts
            );
        }
        // Every iteration's surviving payload is the serial one. (The
        // accumulator folds in every value read, so a stale read that
        // mattered would change it.)
        prop_assert_eq!(&out.payloads, &serial_accs);
        // Sanity on the counters.
        prop_assert_eq!(out.stats.iterations as usize, programs.len());
        prop_assert!(out.stats.executions >= out.stats.iterations);
        prop_assert!(out.stats.validations >= out.stats.iterations);
    }

    /// The threaded path: the same arbitrary conflict structures executed
    /// through the *racing* worker pool — concurrent `MvMemory` + atomic
    /// `Scheduler`, real OS threads, nondeterministic interleavings — must
    /// also converge to the serial memory image, leave no estimate markers
    /// behind, and keep every iteration's serial payload.
    #[test]
    fn pooled_execution_converges_to_serial(
        programs in proptest::collection::vec(
            proptest::collection::vec(arb_op(6), 1..6),
            1..24,
        ),
        threads in 2usize..5,
    ) {
        let pool = 6u64;
        // Serial reference.
        let mut serial = initial_memory(pool);
        let mut serial_accs = Vec::new();
        for (i, ops) in programs.iter().enumerate() {
            serial_accs.push(interpret(i, ops, &mut serial));
        }

        // Raced run over a shared read-only base.
        let base = initial_memory(pool);
        let out = run_speculative_pooled(
            &SpecConfig::default(),
            threads,
            &base,
            programs.len(),
            |i, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
                let acc = interpret(i, &programs[i], view);
                Ok(IterationRun { cycles: 10 + programs[i].len() as u64, payload: acc })
            },
        )
        .expect("synthetic bodies never fault");

        prop_assert_eq!(out.live_estimates, 0, "aborted writes must be re-resolved");
        let mut committed = base.clone();
        for &(w, v) in &out.image {
            committed.write_u64(w, v);
        }
        for s in 0..pool {
            let addr = POOL_BASE + s * 8;
            prop_assert_eq!(
                committed.read_u64(addr),
                serial.read_u64(addr),
                "word {} diverged (threads={}, aborts={})",
                s, threads, out.stats.aborts
            );
        }
        prop_assert_eq!(&out.payloads, &serial_accs);
        prop_assert_eq!(out.stats.iterations as usize, programs.len());
        prop_assert!(out.stats.executions >= out.stats.iterations);
        prop_assert_eq!(out.threads_used, threads.min(programs.len()));
    }

    /// A single lane degenerates to in-order execution: no aborts, ever.
    #[test]
    fn single_lane_never_aborts(
        programs in proptest::collection::vec(
            proptest::collection::vec(arb_op(4), 1..5),
            1..12,
        ),
    ) {
        let mut mem = initial_memory(4);
        let config = SpecConfig { lanes: 1, ..SpecConfig::default() };
        let out = run_speculative(
            &config,
            &mut mem,
            programs.len(),
            |i, view: &mut SpecView<'_, FlatMemory>| -> Result<_, ()> {
                let acc = interpret(i, &programs[i], view);
                Ok(IterationRun { cycles: 10, payload: acc })
            },
        )
        .expect("runs");
        prop_assert_eq!(out.stats.aborts, 0, "in-order execution cannot conflict");
        prop_assert_eq!(out.stats.executions, out.stats.iterations);
    }
}
