//! Offline shim for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of Criterion's API that `janus-bench` uses:
//! `Criterion::bench_function`, benchmark groups with `sample_size`,
//! `b.iter(...)`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is wall-clock via `std::time::Instant`
//! with median-of-samples reporting; there is no HTML report, outlier
//! analysis, or statistical regression testing.
//!
//! CLI compatibility: `cargo bench -- --test` (and `--quick`) runs every
//! benchmark body exactly once, which is what the CI smoke job uses;
//! a positional `<filter>` substring restricts which benchmarks run.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting a benchmark
/// body. Mirrors `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How benchmarks execute: timed sampling or a single smoke-test pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_once = args.iter().any(|a| a == "--test" || a == "--quick");
        // Cargo passes its own flags (e.g. `--bench`); the first bare
        // argument is the benchmark name filter.
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Self {
            mode: if test_once {
                Mode::TestOnce
            } else {
                Mode::Measure
            },
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            self.mode,
            self.filter.as_deref(),
            self.default_sample_size,
            &id,
            f,
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs `f` as a benchmark named `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.parent.default_sample_size);
        run_one(
            self.parent.mode,
            self.parent.filter.as_deref(),
            samples,
            &full,
            f,
        );
        self
    }

    /// Finishes the group. (The real Criterion emits summary reports here.)
    pub fn finish(self) {}
}

fn run_one<F>(mode: Mode, filter: Option<&str>, samples: usize, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    match mode {
        Mode::TestOnce => {
            let mut b = Bencher {
                mode,
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {id} ... ok");
        }
        Mode::Measure => {
            let mut times = Vec::with_capacity(samples);
            for _ in 0..samples.max(1) {
                let mut b = Bencher {
                    mode,
                    iters: 1,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                times.push(b.elapsed);
            }
            times.sort_unstable();
            let median = times[times.len() / 2];
            let (lo, hi) = (times[0], times[times.len() - 1]);
            println!(
                "{id:<48} time: [{} {} {}]",
                fmt_duration(lo),
                fmt_duration(median),
                fmt_duration(hi)
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Times one benchmark body; passed to the closure given to
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.mode == Mode::TestOnce {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
