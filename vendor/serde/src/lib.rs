//! Offline shim for the `serde` facade crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides just enough of serde's surface for the workspace to compile:
//! the two marker traits and the derive macros. No wire format is
//! implemented — nothing in the workspace serialises through serde yet
//! (the profile crate derives the traits so downstream tooling *can*
//! serialise profiles once the real dependency is swapped back in).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
