//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! reimplements the subset of proptest's API used by the Janus test
//! suites: `Strategy` + `prop_map`, `Just`, ranges, tuples, `any`,
//! `prop_oneof!`, `collection::vec`, `option::of`, `array::uniform*`,
//! simple `[class]{m,n}` string patterns, `sample::Index`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * Generation is **deterministic**: each test's RNG is seeded from the
//!   test name, so failures reproduce exactly across runs and machines.
//! * There is **no shrinking** — a failing case panics with the usual
//!   assertion message; rerunning reproduces it.
//! * String strategies accept only `[class]{m,n}` character-class
//!   patterns (the only form the suites use), not full regexes.
//!
//! The number of cases per test defaults to the `ProptestConfig` the
//! test declares and can be lowered globally with the `PROPTEST_CASES`
//! environment variable (used by CI smoke jobs).

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (capped by `PROPTEST_CASES`).
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// The effective case count: the declared count, capped by the
        /// `PROPTEST_CASES` environment variable when set.
        #[must_use]
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                Some(limit) => self.cases.min(limit),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(256)
        }
    }

    /// Deterministic xorshift* RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, mixed with a golden-ratio constant
            // so short names still produce well-distributed streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* — tiny, fast, and good enough for test generation.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies; built by `prop_oneof!`.
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for OneOf<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("OneOf")
                .field("options", &self.options.len())
                .finish()
        }
    }

    impl<T> OneOf<T> {
        /// A strategy choosing uniformly among `options` per generated value.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&'static str` character-class patterns: `"[a-z]{1,8}"` generates
    /// strings of 1..=8 chars drawn from `a..=z`. Only the `[class]{m,n}`
    /// shape (with optional `{m,n}`) is supported.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!("unsupported string pattern {self:?} (shim supports `[class]{{m,n}}` only)")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]` or `[class]{m,n}` into (alphabet, min_len, max_len).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class_src: Vec<char> = rest[..close].chars().collect();
        if class_src.is_empty() {
            return None;
        }
        let mut class = Vec::new();
        let mut i = 0;
        while i < class_src.len() {
            if i + 2 < class_src.len() && class_src[i + 1] == '-' {
                let (lo, hi) = (class_src[i], class_src[i + 2]);
                if lo > hi {
                    return None;
                }
                class.extend(lo..=hi);
                i += 3;
            } else {
                class.push(class_src[i]);
                i += 1;
            }
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((class, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
        if min > max {
            return None;
        }
        Some((class, min, max))
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for canonical strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, usable via [`any`].
    pub trait Arbitrary: Sized {
        /// Generates one canonical value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`: uniform over the whole domain.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over the full domain).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            // Printable ASCII keeps failure output readable.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Uniform in [0, 1); callers map outward as needed.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection. Mirrors
    /// proptest's `SizeRange`: built from a `usize` (exact length), a
    /// half-open `Range`, or an inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self { min: len, max: len }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates vectors whose length lies in `len`, e.g.
    /// `proptest::collection::vec(elem, 0..64)` or `vec(elem, 16)`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.max - self.len.min + 1) as u64;
            let n = self.len.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to also generate `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]` drawing every element from `S`.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// Generates arrays of the indicated arity from one element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }

    uniform_fns!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
        uniform16 => 16, uniform32 => 32
    );
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A size-independent index into a collection: generated once, projected
    /// onto any length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects this index onto a collection of `len` items (`len > 0`).
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`, exposing submodules.
    pub mod prop {
        pub use crate::{array, collection, option, sample};
    }
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion; panics with the failing expression on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares deterministic property tests.
///
/// Each test body runs once per generated case; the RNG is seeded from the
/// test's name so the whole stream is reproducible. On failure the panic
/// message names the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.effective_cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                // Cases are deterministic, so reporting the ordinal is enough
                // to reproduce: rerun and the same case fails again.
                let guard = $crate::CaseOnPanic { name: stringify!($name), case };
                $body
                std::mem::forget(guard);
            }
        }
    )*};
}

/// Prints the failing case ordinal if a property test body panics.
#[doc(hidden)]
#[derive(Debug)]
pub struct CaseOnPanic {
    /// Test name.
    pub name: &'static str,
    /// Zero-based case ordinal.
    pub case: u32,
}

impl Drop for CaseOnPanic {
    fn drop(&mut self) {
        eprintln!(
            "proptest shim: {} failed at deterministic case {} (rerun reproduces it)",
            self.name, self.case
        );
    }
}
