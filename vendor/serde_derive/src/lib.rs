//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface the Janus crates actually use. The real
//! derives generate (de)serialisation visitors; nothing in this workspace
//! consumes `Serialize`/`Deserialize` bounds yet, so the shim derives
//! emit marker-trait impls only. Swap in the real `serde`/`serde_derive`
//! by deleting `vendor/` entries from `[workspace.dependencies]` once the
//! build environment can reach a registry.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, has_generics)` for the type a derive is attached to.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // Generic types would need the parameter list replayed in
                    // the impl; the profile crate only derives on plain types.
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return None;
                    }
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// No-op stand-in for `#[derive(Serialize)]`: implements the marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

/// No-op stand-in for `#[derive(Deserialize)]`: implements the marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}
