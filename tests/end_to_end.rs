//! Cross-crate integration tests: the full pipeline over the synthetic
//! benchmark suite, correctness of parallel execution against native
//! execution, and schedule/serialisation round trips.

use janus::compile::{CompileOptions, Compiler, OptLevel};
use janus::core::{Janus, JanusConfig};
use janus::ir::JBinary;
use janus::schedule::RewriteSchedule;
use janus::vm::{Process, Vm};
use janus::workloads::{parallel_benchmarks, workload};

fn train_binary(name: &str, options: CompileOptions) -> JBinary {
    let w = workload(name).expect("workload exists");
    Compiler::with_options(options)
        .compile(&w.train_program)
        .expect("compiles")
}

#[test]
fn every_parallel_benchmark_matches_native_output_under_janus() {
    for name in parallel_benchmarks() {
        let binary = train_binary(name, CompileOptions::gcc_o3());
        let report = Janus::with_config(JanusConfig {
            threads: 8,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        assert!(report.outputs_match, "{name}: outputs diverged");
    }
}

#[test]
fn headline_benchmarks_speed_up_and_irregular_ones_do_not_break() {
    let lbm = train_binary("470.lbm", CompileOptions::gcc_o3());
    let report = Janus::new().run(&lbm, &[]).unwrap();
    assert!(
        report.speedup() > 2.5,
        "lbm should speed up well, got {:.2}",
        report.speedup()
    );

    let h264 = train_binary("464.h264ref", CompileOptions::gcc_o3());
    let report = Janus::new().run(&h264, &[]).unwrap();
    assert!(report.outputs_match);
    assert!(
        report.speedup() < 1.5,
        "h264ref is overhead-dominated, got {:.2}",
        report.speedup()
    );
}

#[test]
fn speculative_shared_library_calls_are_parallelised_correctly() {
    let bwaves = train_binary("410.bwaves", CompileOptions::gcc_o3());
    let report = Janus::new().run(&bwaves, &[]).unwrap();
    assert!(report.outputs_match, "speculation must preserve semantics");
    assert!(
        report.parallel.stats.stm_transactions > 0,
        "bwaves' pow calls must run under the STM"
    );
    assert_eq!(report.parallel.stats.stm_aborts, 0);
}

#[test]
fn janus_works_across_compiler_configurations() {
    for options in [
        CompileOptions::opt(OptLevel::O0),
        CompileOptions::gcc_o2(),
        CompileOptions::gcc_o3(),
        CompileOptions::gcc_o3_avx(),
        CompileOptions::icc_o3(),
    ] {
        let binary = train_binary("462.libquantum", options);
        let report = Janus::new().run(&binary, &[]).unwrap();
        assert!(
            report.outputs_match,
            "outputs diverged for {}",
            options.describe()
        );
    }
}

#[test]
fn stripped_binaries_are_handled() {
    let w = workload("470.lbm").unwrap();
    let mut binary = Compiler::new().compile(&w.train_program).unwrap();
    binary.strip();
    assert!(binary.is_stripped());
    let report = Janus::new().run(&binary, &[]).unwrap();
    assert!(report.outputs_match);
    assert!(!report.selected_loops.is_empty());
}

#[test]
fn compiler_parallelised_binaries_run_natively() {
    // The Figure 11 baseline: gcc/icc auto-parallelisation executed by the
    // native runtime, not by Janus.
    let w = workload("462.libquantum").unwrap();
    let seq = Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.train_program)
        .unwrap();
    let par = Compiler::with_options(CompileOptions::gcc_parallel(8))
        .compile(&w.train_program)
        .unwrap();
    let mut vm_seq = Vm::new(Process::load(&seq).unwrap());
    let mut vm_par = Vm::new(Process::load(&par).unwrap());
    let seq_result = vm_seq.run().unwrap();
    let par_result = vm_par.run().unwrap();
    assert_eq!(vm_seq.output_floats().len(), vm_par.output_floats().len());
    for (a, b) in vm_seq.output_floats().iter().zip(vm_par.output_floats()) {
        assert!((a - b).abs() < 1e-9);
    }
    assert!(par_result.cycles <= seq_result.cycles);
}

#[test]
fn rewrite_schedule_round_trips_through_bytes() {
    let binary = train_binary("459.GemsFDTD", CompileOptions::gcc_o3());
    let janus = Janus::new();
    let analysis = janus.analyze(&binary).unwrap();
    let selected = janus.select_loops(&analysis, None);
    let schedule = janus.generate_schedule(&binary, &analysis, &selected);
    assert!(!schedule.is_empty());
    let bytes = schedule.to_bytes();
    let reloaded = RewriteSchedule::from_bytes(&bytes).unwrap();
    assert_eq!(reloaded, schedule);
    assert!(
        (schedule.byte_size() as f64) < 0.25 * binary.file_size() as f64,
        "schedules stay small relative to the binary"
    );
}

#[test]
fn thread_count_sweep_preserves_output_for_a_checked_loop() {
    let binary = train_binary("436.cactusADM", CompileOptions::gcc_o3());
    for threads in [1u32, 2, 3, 5, 8] {
        let report = Janus::with_config(JanusConfig {
            threads,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .unwrap();
        assert!(report.outputs_match, "threads = {threads}");
    }
}

#[test]
fn dbm_runs_meter_the_global_metrics_registry() {
    // The DBM meters every run into the process-global registry (DbmConfig
    // is Copy, so there is no handle to thread). Other tests in this binary
    // also run the DBM, so assert on the delta, not the absolute value.
    let registry = janus::obs::metrics::global();
    let before = janus::obs::metrics::parse_exposition(&registry.prometheus_text())
        .expect("exposition parses")
        .series("janus_dbm_runs_total")
        .iter()
        .map(|s| s.value)
        .sum::<f64>();
    let binary = train_binary("470.lbm", CompileOptions::gcc_o3());
    let report = Janus::with_config(JanusConfig {
        threads: 4,
        ..JanusConfig::default()
    })
    .run(&binary, &[])
    .expect("pipeline runs");
    assert!(report.outputs_match);
    let doc = janus::obs::metrics::parse_exposition(&registry.prometheus_text())
        .expect("exposition parses");
    let after = doc
        .series("janus_dbm_runs_total")
        .iter()
        .map(|s| s.value)
        .sum::<f64>();
    assert!(
        after > before,
        "a completed run must increment janus_dbm_runs_total ({before} -> {after})"
    );
    // The parallel loop ran, so invocations and merge/tuner families exist.
    assert!(
        !doc.series("janus_dbm_parallel_invocations_total")
            .is_empty(),
        "parallel invocation counter registered"
    );
    assert!(
        !doc.series("janus_spec_invocations_total").is_empty(),
        "spec counters registered"
    );
}
