//! Integration test for the facade crate: the quickstart flow from the
//! `janus` crate docs, exercised as a real test so the single-dependency
//! entry point (`janus::core::Janus` + `janus::workloads`) can never drift
//! from the documented usage.

use janus::compile::Compiler;
use janus::core::{Janus, JanusConfig, OptimisationMode};
use janus::workloads::workload;

#[test]
fn facade_parallelises_a_doall_workload() {
    // Mirrors the src/lib.rs quickstart doctest: build a DOALL workload at
    // training scale and run the full pipeline through the facade re-exports.
    let w = workload("470.lbm").expect("workload exists");
    let binary = Compiler::new()
        .compile(&w.train_program)
        .expect("workload compiles");
    let janus = Janus::with_config(JanusConfig {
        threads: 4,
        ..JanusConfig::default()
    });
    let report = janus
        .run(&binary, &[])
        .expect("pipeline runs to completion");
    assert!(report.outputs_match, "parallel outputs must match native");
    assert!(
        report.speedup() > 1.0,
        "a DOALL workload must speed up, got {:.2}x",
        report.speedup()
    );
}

#[test]
fn facade_modes_order_sensibly_on_a_doall_workload() {
    // The four optimisation levels of Figure 7, via the facade: instrumentation
    // alone must not speed anything up, and full Janus must beat it.
    let w = workload("470.lbm").expect("workload exists");
    let binary = Compiler::new()
        .compile(&w.train_program)
        .expect("workload compiles");
    let run = |mode| {
        Janus::with_config(JanusConfig {
            threads: 4,
            mode,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("pipeline runs")
        .speedup()
    };
    let dbm_only = run(OptimisationMode::DynamoRioOnly);
    let full = run(OptimisationMode::Full);
    assert!(
        dbm_only <= 1.05,
        "DBM alone must not speed up ({dbm_only:.2}x)"
    );
    assert!(full > dbm_only, "full Janus must beat bare DBM");
}
