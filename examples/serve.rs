//! Serving mode: drive a mixed batch of guest invocations through a
//! `janus-serve` session and watch the content-addressed artifact cache
//! amortise analysis across jobs.
//!
//! The batch mixes a DOALL stencil (`470.lbm`), a bounds-checked pointer
//! kernel (`459.GemsFDTD`) and a may-dependent scatter (`spec.histogram`),
//! submits every binary several times — including per-job backend overrides,
//! so virtual-time and native-thread jobs interleave in one session — and
//! cross-checks each result against a serial run of the same cached
//! artifact.
//!
//! With `--store DIR` the session persists every artifact to a
//! content-addressed disk store in `DIR`; run the example twice against the
//! same directory and the second run serves every binary from disk with
//! zero pipeline rebuilds (`--expect-warm` asserts exactly that).
//!
//! With `--trace-out FILE` the session runs with the flight recorder
//! enabled and writes a Chrome trace-event JSON of the whole batch — per-job
//! queue-wait/cache-probe/execute spans, the pipeline's analysis/schedule
//! spans and per-worker tracks — loadable in Perfetto (`ui.perfetto.dev`)
//! or `chrome://tracing`.
//!
//! With `--telemetry ADDR` (e.g. `--telemetry 127.0.0.1:9184`) the session
//! serves live telemetry over HTTP while the batch runs: `GET /metrics`
//! (Prometheus exposition), `/healthz`, `/statusz` (JSON snapshot) and
//! `/tracez` (Chrome trace, when tracing is on). The example scrapes its
//! own `/metrics` once before shutdown and prints the bound address, so
//! `curl http://ADDR/metrics` works from another terminal mid-batch.
//!
//! Run with:
//! `cargo run --release --example serve -- [--backend virtual|native] [--threads N] [--store DIR [--expect-warm]] [--trace-out FILE] [--telemetry ADDR]`

use janus::core::{BackendKind, Janus, JanusConfig, PreparedDbm};
use janus::serve::{JobSpec, ServeConfig, ServeSession};
use janus::vm::Process;
use janus::workloads::workload;
use std::collections::HashMap;
use std::sync::Arc;

#[path = "util/flags.rs"]
mod flags;

const NAMES: [&str; 3] = ["470.lbm", "459.GemsFDTD", "spec.histogram"];
const JOBS_PER_BINARY: usize = 4;

/// The example's own flags on top of the shared `--backend`/`--threads`
/// parser (which ignores flags it does not know).
struct ServeFlags {
    store: Option<std::path::PathBuf>,
    expect_warm: bool,
    trace_out: Option<std::path::PathBuf>,
    telemetry: Option<String>,
}

/// Parses `--store DIR` / `--expect-warm` / `--trace-out FILE` /
/// `--telemetry ADDR`.
fn store_flags() -> ServeFlags {
    let mut flags = ServeFlags {
        store: None,
        expect_warm: false,
        trace_out: None,
        telemetry: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--store expects a directory path");
                    std::process::exit(2);
                });
                flags.store = Some(std::path::PathBuf::from(dir));
            }
            "--expect-warm" => flags.expect_warm = true,
            "--trace-out" => {
                let file = args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out expects a file path");
                    std::process::exit(2);
                });
                flags.trace_out = Some(std::path::PathBuf::from(file));
            }
            "--telemetry" => {
                let addr = args.next().unwrap_or_else(|| {
                    eprintln!("--telemetry expects a bind address, e.g. 127.0.0.1:9184");
                    std::process::exit(2);
                });
                flags.telemetry = Some(addr);
            }
            _ => {}
        }
    }
    if flags.expect_warm && flags.store.is_none() {
        eprintln!("--expect-warm requires --store DIR");
        std::process::exit(2);
    }
    flags
}

fn main() {
    let (backend, threads) = flags::parse(4);
    let ServeFlags {
        store: store_dir,
        expect_warm,
        trace_out,
        telemetry,
    } = store_flags();
    let janus = Janus::with_config(JanusConfig {
        threads,
        backend,
        ..JanusConfig::default()
    });

    // Compile the mixed workload set once; the serving layer keys everything
    // else off each binary's content digest.
    let binaries: Vec<(&str, Arc<janus::ir::JBinary>)> = NAMES
        .iter()
        .map(|name| {
            let w = workload(name).expect("workload exists");
            let binary = janus::compile::Compiler::new()
                .compile(&w.train_program)
                .expect("compiles");
            (*name, Arc::new(binary))
        })
        .collect();

    // Serial references: the same cached-artifact path, one job at a time.
    let mut reference = HashMap::new();
    for (name, binary) in &binaries {
        let artifacts = janus.prepare(binary, &[]).expect("prepares");
        let prepared = PreparedDbm::new(
            Process::load(binary).expect("loads"),
            &artifacts.schedule,
            janus.dbm_config(),
        );
        let run = prepared.execute(&[]).expect("serial run succeeds");
        println!(
            "{name:<16} digest {:#018x}: {} selected loops, schedule {} bytes",
            binary.content_digest(),
            artifacts.selected_loops.len(),
            artifacts.schedule_size,
        );
        reference.insert(*name, run);
    }

    // The serving session: 4 workers, every binary submitted several times,
    // alternating the execution backend per job.
    let trace = if trace_out.is_some() {
        janus::obs::Recorder::enabled()
    } else {
        janus::obs::Recorder::default()
    };
    let handle = janus.serve(ServeConfig {
        workers: 4,
        store_dir: store_dir.clone(),
        trace: trace.clone(),
        telemetry_addr: telemetry.clone(),
        ..ServeConfig::default()
    });
    if let Some(addr) = handle.telemetry_addr() {
        println!("telemetry: http://{addr}/metrics (also /healthz /statusz /tracez)");
    }
    // One spec per binary (the content digest is computed once in
    // `JobSpec::new`), cloned per submission with its per-job override.
    let specs: Vec<(&str, JobSpec)> = binaries
        .iter()
        .map(|(name, binary)| (*name, JobSpec::new(binary.clone())))
        .collect();
    let mut submitted = Vec::new();
    for round in 0..JOBS_PER_BINARY {
        for (i, (name, spec)) in specs.iter().enumerate() {
            let job_backend = if (round + i) % 2 == 0 {
                BackendKind::VirtualTime
            } else {
                BackendKind::NativeThreads
            };
            let id = handle
                .submit(spec.clone().with_backend(job_backend))
                .expect("queue has room for the batch");
            submitted.push((id, *name));
        }
    }

    let outcomes = handle.join();
    let mut matches = 0;
    for ((id, outcome), (_, name)) in outcomes.iter().zip(&submitted) {
        let report = outcome.as_ref().expect("job succeeds");
        let expect = &reference[name];
        assert_eq!(report.memory_digest, expect.memory_digest, "{id} {name}");
        assert_eq!(report.output_ints, expect.output_ints, "{id} {name}");
        assert_eq!(report.output_floats, expect.output_floats, "{id} {name}");
        matches += 1;
    }

    // With telemetry on, scrape our own /metrics once before shutdown as a
    // live demonstration (and self-check) of the exposition endpoint.
    if let Some(addr) = handle.telemetry_addr() {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("telemetry endpoint accepts");
        write!(stream, "GET /metrics HTTP/1.0\r\nHost: janus\r\n\r\n").expect("request writes");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("response reads");
        assert!(raw.starts_with("HTTP/1.0 200"), "scrape succeeds: {raw}");
        let series = raw
            .lines()
            .filter(|l| l.starts_with("janus_") && !l.starts_with('#'))
            .count();
        println!("telemetry: scraped /metrics — {series} janus_* series exposed");
    }

    let stats = handle.shutdown();
    println!(
        "\n{} jobs over {} binaries: all {} match their serial runs",
        outcomes.len(),
        binaries.len(),
        matches
    );
    println!(
        "cache: {} analyses, {} hits + {} in-flight waits ({:.0}% amortised), {} resident",
        stats.cache_misses,
        stats.cache_hits,
        stats.cache_inflight_waits,
        stats.cache_hit_rate() * 100.0,
        stats.cache_entries,
    );
    println!(
        "jobs: {} submitted, {} completed, {} failed, {} rejected, peak in-flight {}",
        stats.jobs_submitted,
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_rejected,
        stats.max_in_flight_seen,
    );
    if let Some(dir) = &store_dir {
        println!(
            "store {}: {} entries, {} disk hits, {} disk misses, {} corrupt",
            dir.display(),
            stats.disk_entries,
            stats.disk_hits,
            stats.disk_misses,
            stats.disk_corrupt,
        );
    }
    println!(
        "latency: queue-wait p50 {:.6}s p99 {:.6}s, execute p50 {:.6}s, job p50 {:.6}s p99 {:.6}s",
        stats.job_queue_wait.p50_seconds(),
        stats.job_queue_wait.p99_seconds(),
        stats.job_execute.p50_seconds(),
        stats.job_wall.p50_seconds(),
        stats.job_wall.p99_seconds(),
    );
    if let Some(path) = &trace_out {
        let json = trace.chrome_trace();
        // Self-check before writing: the export must be valid JSON and
        // carry the serving spans a reader will look for.
        let doc = janus::obs::json::parse(&json).expect("chrome trace is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        for span in ["queue.wait", "cache.probe", "execute", "analysis"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(span)),
                "trace is missing {span:?} events"
            );
        }
        std::fs::write(path, &json).expect("write chrome trace");
        println!(
            "trace: {} events ({} dropped) -> {} (load in ui.perfetto.dev)",
            trace.len(),
            trace.dropped(),
            path.display(),
        );
    }
    if expect_warm {
        // A warm start over a populated store dir rebuilds nothing: every
        // artifact is deserialised from disk, no analysis runs.
        assert_eq!(stats.cache_misses, 0, "warm start must not rebuild");
        assert_eq!(stats.disk_hits, binaries.len() as u64);
        println!("warm start verified: 0 analyses, all artifacts from disk");
    } else {
        assert_eq!(stats.cache_misses, binaries.len() as u64);
    }
    assert_eq!(stats.disk_corrupt, 0);
    assert_eq!(stats.jobs_failed, 0);
}
