//! Inspect the static analysis of a benchmark binary: loop classification,
//! induction variables, dependences and the generated rewrite schedule.
//!
//! Run with: `cargo run --release --example inspect_loops [benchmark]`
//! (defaults to `410.bwaves`).

use janus::compile::{CompileOptions, Compiler};
use janus::core::Janus;
use janus::workloads::workload;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "410.bwaves".to_string());
    let w = workload(&name).expect("known workload (e.g. 470.lbm, 410.bwaves)");
    let binary = Compiler::with_options(CompileOptions::gcc_o3())
        .compile(&w.program)
        .expect("compiles");

    let janus = Janus::new();
    let analysis = janus.analyze(&binary).expect("analysis succeeds");
    println!(
        "{name}: {} functions, {} loops",
        analysis.functions.len(),
        analysis.loops.len()
    );
    for l in &analysis.loops {
        println!(
            "\nloop {} @ {:#x} (depth {}) — {}",
            l.id,
            l.header_addr,
            l.depth,
            l.category.label()
        );
        if let Some(reason) = &l.incompatible_reason {
            println!("  reason: {reason}");
        }
        if let Some(iv) = &l.induction {
            println!(
                "  induction: {:?} step {} trip-count {:?}",
                iv.var, iv.step, iv.trip_count
            );
        }
        println!(
            "  accesses: {}  reductions: {}  bounds-check pairs: {}  external calls: {}",
            l.accesses.len(),
            l.reductions.len(),
            l.bounds_checks.len(),
            l.external_call_addrs.len()
        );
    }

    let selected = janus.select_loops(&analysis, None);
    let schedule = janus.generate_schedule(&binary, &analysis, &selected);
    println!("\nselected loops: {selected:?}");
    println!(
        "rewrite schedule: {} rules, {} bytes",
        schedule.len(),
        schedule.byte_size()
    );
    for rule in schedule.rules().iter().take(20) {
        println!("  {rule}");
    }
    if schedule.len() > 20 {
        println!("  ... ({} more rules)", schedule.len() - 20);
    }
}
