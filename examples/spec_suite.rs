//! Run Janus over the nine parallelisable synthetic SPEC-like benchmarks and
//! print a Figure-7-style speedup table for a chosen thread count.
//!
//! Run with:
//! `cargo run --release --example spec_suite -- [threads] [--backend virtual|native] [--threads N]`

use janus::compile::{CompileOptions, Compiler};
use janus::core::{Janus, JanusConfig, OptimisationMode};
use janus::workloads::{parallel_benchmarks, workload};

#[path = "util/flags.rs"]
mod flags;

fn main() {
    let (backend, threads) = flags::parse(8);
    println!("backend: {backend} | threads: {threads}");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>8}",
        "benchmark", "DynamoRIO", "Janus", "par.loops", "checks"
    );
    for name in parallel_benchmarks() {
        let w = workload(name).expect("workload exists");
        let binary = Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&w.program)
            .expect("compiles");
        let overhead = Janus::with_config(JanusConfig {
            threads,
            backend,
            mode: OptimisationMode::DynamoRioOnly,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("dbm-only run succeeds");
        let full = Janus::with_config(JanusConfig {
            threads,
            backend,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("janus run succeeds");
        assert!(full.outputs_match, "{name}: outputs diverged");
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10} {:>8}",
            name,
            overhead.speedup(),
            full.speedup(),
            full.parallel.stats.parallel_invocations,
            full.parallel.stats.bounds_checks_executed,
        );
    }
}
