//! Quickstart: compile a small DOALL kernel, parallelise it with Janus and
//! compare against native execution.
//!
//! Run with:
//! `cargo run --release --example quickstart -- [--backend virtual|native] [--threads N]`

use janus::compile::{ast, Compiler};
use janus::core::{Janus, JanusConfig};

#[path = "util/flags.rs"]
mod flags;

fn main() {
    let (backend, threads) = flags::parse(8);
    // A simple `y[i] = 3*x[i] + y[i]` kernel over 64k elements.
    let n = 65_536i64;
    let program = ast::Program::builder("quickstart")
        .global_f64("x", n as usize)
        .global_f64("y", n as usize)
        .function(
            ast::Function::new("main")
                .local("i", ast::Ty::I64)
                .body(vec![
                    ast::Stmt::simple_for(
                        "i",
                        ast::Expr::const_i(0),
                        ast::Expr::const_i(n),
                        vec![ast::Stmt::assign(
                            ast::LValue::store("y", ast::Expr::var("i")),
                            ast::Expr::add(
                                ast::Expr::mul(
                                    ast::Expr::load("x", ast::Expr::var("i")),
                                    ast::Expr::const_f(3.0),
                                ),
                                ast::Expr::load("y", ast::Expr::var("i")),
                            ),
                        )],
                    ),
                    ast::Stmt::print(ast::Expr::load("y", ast::Expr::const_i(1234))),
                ]),
        )
        .build();

    // Compile to a JVA binary, exactly as gcc -O3 would produce an ELF.
    let binary = Compiler::new().compile(&program).expect("compiles");
    println!(
        "binary: {} instructions, {} bytes",
        binary.num_instructions(),
        binary.file_size()
    );

    // Parallelise with the selected backend and thread count.
    let janus = Janus::with_config(JanusConfig {
        threads,
        backend,
        ..JanusConfig::default()
    });
    let report = janus.run(&binary, &[]).expect("pipeline succeeds");

    println!(
        "backend:             {} ({threads} threads)",
        report.backend
    );
    println!("selected loops:      {:?}", report.selected_loops);
    println!("native cycles:       {}", report.native.cycles);
    println!("janus cycles:        {}", report.parallel.cycles);
    println!("speedup:             {:.2}x (modelled)", report.speedup());
    if report.os_threads_used() > 0 {
        println!(
            "os threads used:     {} (parallel wall time {:.4}s)",
            report.os_threads_used(),
            report.parallel_wall_seconds()
        );
    }
    println!("outputs match:       {}", report.outputs_match);
    println!(
        "schedule size:       {} bytes ({:.2}% of binary)",
        report.schedule_size,
        report.schedule_size_fraction() * 100.0
    );
    println!("breakdown:           {}", report.parallel.stats.breakdown);
}
