//! Shared `--backend` / `--threads` flag parsing for the runnable examples.
//!
//! Not an example itself — each example pulls it in with
//! `#[path = "util/flags.rs"] mod flags;`.

use janus::core::BackendKind;

/// Parses `--backend virtual|native` and `--threads N` from the process
/// arguments, plus a legacy positional thread count; unknown flags are
/// ignored. The backend defaults to the `JANUS_BACKEND` environment
/// variable (or virtual time), the thread count to `default_threads`.
pub fn parse(default_threads: u32) -> (BackendKind, u32) {
    let mut backend = BackendKind::from_env();
    let mut threads = default_threads;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let value = args.next().unwrap_or_default();
                backend = BackendKind::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown backend {value:?}; expected virtual or native");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| *t > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    });
            }
            other => {
                // Backwards compatible positional thread count.
                if let Ok(t) = other.parse() {
                    threads = t;
                }
            }
        }
    }
    (backend, threads)
}
