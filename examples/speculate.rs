//! Run the may-dependent (DOACROSS) workloads under the Block-STM-style
//! speculation engine and print a Table-III-style abort/speedup summary.
//!
//! Run with:
//! `cargo run --release --example speculate -- [threads] [--backend virtual|native] [--threads N]`

use janus::compile::{CompileOptions, Compiler};
use janus::core::{Janus, JanusConfig};
use janus::workloads::{speculative_benchmarks, workload};

#[path = "util/flags.rs"]
mod flags;

fn main() {
    let (backend, threads) = flags::parse(8);
    println!("backend: {backend} | threads: {threads}");
    println!(
        "{:<22} {:>8} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "workload", "spec", "iters", "aborts", "retries", "serial", "spec-up"
    );
    for name in speculative_benchmarks() {
        let w = workload(name).expect("workload exists");
        let binary = Compiler::with_options(CompileOptions::gcc_o3())
            .compile(&w.program)
            .expect("compiles");
        // The seed behaviour: speculation off, the may-dep loop serialises.
        let serial = Janus::with_config(JanusConfig {
            threads,
            backend,
            speculation: false,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("serial run succeeds");
        // The janus-spec path.
        let spec = Janus::with_config(JanusConfig {
            threads,
            backend,
            ..JanusConfig::default()
        })
        .run(&binary, &[])
        .expect("speculative run succeeds");
        assert!(spec.outputs_match, "{name}: speculative outputs diverged");
        assert!(serial.outputs_match, "{name}: serial outputs diverged");
        println!(
            "{:<22} {:>8} {:>10} {:>8} {:>8} {:>9.2} {:>9.2}",
            name,
            spec.parallel.stats.spec_invocations,
            spec.parallel.stats.spec_iterations,
            spec.spec_aborts(),
            spec.spec_retries(),
            serial.speedup(),
            spec.speedup(),
        );
    }
    println!("\n(`spec-up` > `serial`: loops the seed pipeline refused to parallelise now run speculatively.)");
}
